(** The graph problems the paper classifies (Table 2), with reference
    solutions and answer validation.

    [reference] computes the canonical ground-truth answer sequentially.
    [valid_answer] accepts any answer the problem statement allows (several
    problems — rooted MIS, BFS — admit many correct outputs, and protocols
    under different adversaries legitimately return different ones). *)

type t =
  | Build  (** reconstruct the graph (adjacency structure). *)
  | Rooted_mis of int  (** maximal independent set containing the root. *)
  | Triangle
  | Square  (** contains a 4-cycle (the introduction's hard question). *)
  | Diameter_at_most of int  (** the introduction's "diameter <= 3?". *)
  | Two_cliques  (** promise: (n/2 - 1)-regular on n nodes, n even. *)
  | Eob_bfs  (** BFS forest if even-odd-bipartite, reject otherwise. *)
  | Bfs
  | Spanning_forest  (** any spanning forest, as an edge set. *)
  | Subgraph of int  (** [Subgraph j]: edges among the first [j] nodes. *)
  | Connectivity

val name : t -> string
val reference : t -> Wb_graph.Graph.t -> Answer.t
val valid_answer : t -> Wb_graph.Graph.t -> Answer.t -> bool
