lib/core/protocol.ml: Answer Board Model View Wb_support
