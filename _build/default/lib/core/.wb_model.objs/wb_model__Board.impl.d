lib/core/board.ml: Array Format Message Wb_support
