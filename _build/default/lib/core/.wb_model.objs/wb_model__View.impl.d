lib/core/view.ml: Array Wb_graph
