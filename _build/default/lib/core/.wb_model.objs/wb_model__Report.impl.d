lib/core/report.ml: Answer Array Buffer Engine Format Fun List Printf String Wb_graph
