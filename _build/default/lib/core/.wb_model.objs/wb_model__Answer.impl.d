lib/core/answer.ml: Array Format List Wb_graph
