lib/core/problems.mli: Answer Wb_graph
