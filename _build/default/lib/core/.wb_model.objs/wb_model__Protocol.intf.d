lib/core/protocol.mli: Answer Board Model View Wb_support
