lib/core/engine.mli: Adversary Answer Protocol Wb_graph
