lib/core/adversary.ml: Array Board List Message Wb_graph Wb_support
