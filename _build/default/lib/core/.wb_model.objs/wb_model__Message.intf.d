lib/core/message.mli: Format Wb_support
