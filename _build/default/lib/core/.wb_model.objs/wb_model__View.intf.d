lib/core/view.mli: Wb_graph
