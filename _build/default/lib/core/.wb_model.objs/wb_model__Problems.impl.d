lib/core/problems.ml: Answer List Printf Wb_graph
