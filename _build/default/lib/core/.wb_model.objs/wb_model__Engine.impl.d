lib/core/engine.ml: Adversary Answer Array Board List Message Model Printexc Protocol View Wb_graph
