lib/core/answer.mli: Format Wb_graph
