lib/core/board.mli: Format Message
