lib/core/adversary.mli: Board Wb_graph Wb_support
