lib/core/message.ml: Array Format Wb_support
