(** Human-readable execution timelines: which nodes activated and wrote in
    each round, with message sizes — the debugging view of a run.  Rounds
    with no events (possible in free models while certificates accumulate)
    are skipped. *)

val timeline : Engine.run -> string

val summary : Engine.run -> string
(** One line: outcome, rounds, bits. *)

val pp : Format.formatter -> Engine.run -> unit
