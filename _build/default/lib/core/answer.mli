(** Protocol outputs.  One variant per kind of problem the paper studies;
    [Reject] is the robust "invalid input" answer (e.g. BUILD on a graph of
    too-high degeneracy, EOB-BFS on a non-even-odd-bipartite graph). *)

type t =
  | Graph of Wb_graph.Graph.t  (** BUILD: the reconstructed graph. *)
  | Bool of bool  (** decision problems: TRIANGLE, 2-CLIQUES, CONNECTIVITY. *)
  | Node_set of int list  (** rooted MIS, sorted. *)
  | Forest of int array  (** BFS forest: parent per node, [-1] for roots. *)
  | Edge_set of (int * int) list  (** SUBGRAPH_f, sorted with [u < v]. *)
  | Reject  (** input outside the promise class. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
