(** Round-based interpreter for whiteboard protocols.

    Operational semantics (one round):
    + nodes whose message appears on the board become [terminated];
    + the {e write candidates} are the nodes already active at the start of
      the round (a node never activates and writes in the same round, per
      the paper's successor-configuration rule);
    + awake nodes may activate — all of them in round one under simultaneous
      models, by [wants_to_activate] otherwise; in frozen models the
      activating node composes its message now, from the current board, and
      the message never changes;
    + in synchronous models every candidate recomposes its message from the
      current board;
    + the adversary picks one candidate and its current message is appended.

    The run succeeds when all [n] messages are on the board, and deadlocks
    when no candidate exists and no awake node activates. *)

type outcome =
  | Success of Answer.t
  | Deadlock  (** corrupted final configuration: non-terminated nodes remain. *)
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string  (** the output function raised. *)

type stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = {
  outcome : outcome;
  writes : int array;  (** authors in write order. *)
  stats : stats;
  activation_round : int array;  (** -1 when the node never activated. *)
  write_round : int array;  (** -1 when the node never wrote. *)
  message_bits : int array;  (** payload size per node; -1 when unwritten. *)
}

val succeeded : run -> bool
val answer : run -> Answer.t option

module Make (P : Protocol.S) : sig
  val run : ?max_rounds:int -> Wb_graph.Graph.t -> Adversary.t -> run
  (** Execute under one adversary.  [max_rounds] defaults to [2n + 8]
      (any legal execution fits; exceeding it is reported as [Deadlock]). *)

  val explore : ?limit:int -> Wb_graph.Graph.t -> (run -> bool) -> bool * int
  (** [explore g check] enumerates {e every} adversarial schedule, calling
      [check] on each complete execution.  Returns [(all passed, number of
      executions)].  @raise Failure when more than [limit] (default 10^6)
      executions would be visited. *)
end

val run_packed : ?max_rounds:int -> Protocol.t -> Wb_graph.Graph.t -> Adversary.t -> run
val explore_packed : ?limit:int -> Protocol.t -> Wb_graph.Graph.t -> (run -> bool) -> bool * int
