type t = { id : int; n : int; nbrs : int array }

let make g v = { id = v; n = Wb_graph.Graph.n g; nbrs = Wb_graph.Graph.neighbors g v }

let of_parts ~id ~n ~neighbors =
  if id < 0 || id >= n then invalid_arg "View.of_parts: id out of range";
  Array.iter (fun w -> if w < 0 || w >= n || w = id then invalid_arg "View.of_parts: bad neighbor") neighbors;
  let nbrs = Array.copy neighbors in
  Array.sort compare nbrs;
  { id; n; nbrs }

let id v = v.id

let n v = v.n

let degree v = Array.length v.nbrs

let neighbors v = v.nbrs

let mem_neighbor v w =
  let rec search lo hi =
    if lo > hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if v.nbrs.(mid) = w then true
      else if v.nbrs.(mid) < w then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (Array.length v.nbrs - 1)

let iter_neighbors v f = Array.iter f v.nbrs

let fold_neighbors v f init = Array.fold_left f init v.nbrs

let paper_id v = v.id + 1
