type t =
  | Graph of Wb_graph.Graph.t
  | Bool of bool
  | Node_set of int list
  | Forest of int array
  | Edge_set of (int * int) list
  | Reject

let equal a b =
  match (a, b) with
  | Graph g, Graph h -> Wb_graph.Graph.equal g h
  | Bool x, Bool y -> x = y
  | Node_set x, Node_set y -> List.sort compare x = List.sort compare y
  | Forest x, Forest y -> x = y
  | Edge_set x, Edge_set y -> List.sort compare x = List.sort compare y
  | Reject, Reject -> true
  | (Graph _ | Bool _ | Node_set _ | Forest _ | Edge_set _ | Reject), _ -> false

let pp ppf = function
  | Graph g -> Wb_graph.Graph.pp ppf g
  | Bool b -> Format.pp_print_bool ppf b
  | Node_set s ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
      (List.map (fun v -> v + 1) (List.sort compare s))
  | Forest parent ->
    Format.fprintf ppf "forest[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Format.pp_print_int)
      (Array.to_list (Array.map (fun p -> if p < 0 then 0 else p + 1) parent))
  | Edge_set es ->
    Format.fprintf ppf "edges{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" (u + 1) (v + 1)))
      (List.sort compare es)
  | Reject -> Format.pp_print_string ppf "reject"
