type outcome =
  | Success of Answer.t
  | Deadlock
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string

type stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = {
  outcome : outcome;
  writes : int array;
  stats : stats;
  activation_round : int array;
  write_round : int array;
  message_bits : int array;
}

let succeeded r = match r.outcome with Success _ -> true | Deadlock | Size_violation _ | Output_error _ -> false

let answer r = match r.outcome with Success a -> Some a | Deadlock | Size_violation _ | Output_error _ -> None

type status = Awake | Active | Terminated

module Make (P : Protocol.S) = struct
  module G = Wb_graph.Graph

  type state = {
    g : G.t;
    size : int;
    bound : int;
    views : View.t array;
    board : Board.t;
    mutable status : status array;
    mutable locals : P.local array;
    mutable memory : Message.t option array;
    mutable activation_round : int array;
    mutable write_round : int array;
    mutable round : int;
  }

  let initial g =
    let size = G.n g in
    let views = Array.init size (View.make g) in
    { g;
      size;
      bound = P.message_bound ~n:size;
      views;
      board = Board.create size;
      status = Array.make size Awake;
      locals = Array.map P.init views;
      memory = Array.make size None;
      activation_round = Array.make size (-1);
      write_round = Array.make size (-1);
      round = 0 }

  let frozen = Model.frozen_at_activation P.model

  let simultaneous = Model.simultaneous P.model

  let compose_now st v =
    let writer, local = P.compose st.views.(v) st.board st.locals.(v) in
    st.locals.(v) <- local;
    st.memory.(v) <- Some (Message.of_writer ~author:v writer)

  (* One deterministic round prefix: terminations, candidate collection,
     activations, synchronous recomposition.  Returns the candidates. *)
  let round_prefix st =
    st.round <- st.round + 1;
    let activated = ref false in
    for v = 0 to st.size - 1 do
      if st.status.(v) = Active && Board.has_author st.board v then st.status.(v) <- Terminated
    done;
    let candidates = ref [] in
    for v = st.size - 1 downto 0 do
      if st.status.(v) = Active then candidates := v :: !candidates
    done;
    for v = 0 to st.size - 1 do
      if st.status.(v) = Awake then begin
        let goes =
          if simultaneous then st.round = 1
          else P.wants_to_activate st.views.(v) st.board st.locals.(v)
        in
        if goes then begin
          st.status.(v) <- Active;
          st.activation_round.(v) <- st.round;
          activated := true;
          if frozen then compose_now st v
        end
      end
    done;
    if not frozen then List.iter (compose_now st) !candidates;
    (!candidates, !activated)

  let do_write st v =
    match st.memory.(v) with
    | None -> assert false
    | Some m ->
      Board.append st.board m;
      st.write_round.(v) <- st.round;
      m

  let finish st outcome =
    let message_bits = Array.make st.size (-1) in
    Board.iter (fun m -> message_bits.(Message.author m) <- Message.size_bits m) st.board;
    { outcome;
      writes = Board.authors_in_order st.board;
      stats =
        { rounds = st.round;
          max_message_bits = Board.max_message_bits st.board;
          total_bits = Board.total_bits st.board };
      activation_round = Array.copy st.activation_round;
      write_round = Array.copy st.write_round;
      message_bits }

  let success_outcome st =
    match P.output ~n:st.size st.board with
    | answer -> Success answer
    | exception e -> Output_error (Printexc.to_string e)

  (* Advance through rounds until a scheduling choice, success or deadlock. *)
  let rec advance st max_rounds =
    if Board.length st.board = st.size then `Success
    else if st.round >= max_rounds then `Deadlock
    else begin
      match round_prefix st with
      | [], false -> `Deadlock
      | [], true -> advance st max_rounds
      | candidates, _ -> `Choices candidates
    end

  let check_size st v =
    match st.memory.(v) with
    | None -> None
    | Some m ->
      let bits = Message.size_bits m in
      if bits > st.bound then Some (Size_violation { node = v; bits; bound = st.bound }) else None

  let run ?max_rounds g adv =
    let st = initial g in
    let max_rounds = match max_rounds with Some r -> r | None -> (2 * st.size) + 8 in
    let rec loop () =
      match advance st max_rounds with
      | `Success -> finish st (success_outcome st)
      | `Deadlock -> finish st Deadlock
      | `Choices candidates ->
        let v = Adversary.choose adv st.board candidates in
        (match check_size st v with
        | Some violation -> finish st violation
        | None ->
          ignore (do_write st v);
          loop ())
    in
    loop ()

  type snapshot = {
    s_status : status array;
    s_locals : P.local array;
    s_memory : Message.t option array;
    s_activation : int array;
    s_write : int array;
    s_round : int;
    s_board_len : int;
  }

  let snapshot st =
    { s_status = Array.copy st.status;
      s_locals = Array.copy st.locals;
      s_memory = Array.copy st.memory;
      s_activation = Array.copy st.activation_round;
      s_write = Array.copy st.write_round;
      s_round = st.round;
      s_board_len = Board.snapshot_length st.board }

  let restore st s =
    st.status <- Array.copy s.s_status;
    st.locals <- Array.copy s.s_locals;
    st.memory <- Array.copy s.s_memory;
    st.activation_round <- Array.copy s.s_activation;
    st.write_round <- Array.copy s.s_write;
    st.round <- s.s_round;
    Board.truncate st.board s.s_board_len

  let explore ?(limit = 1_000_000) g check =
    let st = initial g in
    let max_rounds = (2 * st.size) + 8 in
    let executions = ref 0 in
    let complete outcome =
      incr executions;
      if !executions > limit then failwith "Engine.explore: execution limit exceeded";
      check (finish st outcome)
    in
    let rec go () =
      match advance st max_rounds with
      | `Success -> complete (success_outcome st)
      | `Deadlock -> complete Deadlock
      | `Choices candidates ->
        List.for_all
          (fun v ->
            let saved = snapshot st in
            let ok =
              match check_size st v with
              | Some violation -> complete violation
              | None ->
                ignore (do_write st v);
                go ()
            in
            restore st saved;
            ok)
          candidates
    in
    let all_ok = go () in
    (all_ok, !executions)
end

let run_packed ?max_rounds (module P : Protocol.S) g adv =
  let module E = Make (P) in
  E.run ?max_rounds g adv

let explore_packed ?limit (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore ?limit g check
