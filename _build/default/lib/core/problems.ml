module G = Wb_graph.Graph
module Algo = Wb_graph.Algo

type t =
  | Build
  | Rooted_mis of int
  | Triangle
  | Square
  | Diameter_at_most of int
  | Two_cliques
  | Eob_bfs
  | Bfs
  | Spanning_forest
  | Subgraph of int
  | Connectivity

let name = function
  | Build -> "BUILD"
  | Rooted_mis r -> Printf.sprintf "MIS(root=%d)" (r + 1)
  | Triangle -> "TRIANGLE"
  | Square -> "SQUARE"
  | Diameter_at_most d -> Printf.sprintf "DIAMETER<=%d" d
  | Two_cliques -> "2-CLIQUES"
  | Eob_bfs -> "EOB-BFS"
  | Bfs -> "BFS"
  | Spanning_forest -> "SPANNING-FOREST"
  | Subgraph j -> Printf.sprintf "SUBGRAPH(%d)" j
  | Connectivity -> "CONNECTIVITY"

let diameter_at_most g d =
  Algo.is_connected g && (G.n g = 0 || Algo.diameter g <= d)

let is_spanning_forest g edges =
  let n = G.n g in
  let all_edges_exist = List.for_all (fun (u, v) -> u >= 0 && v >= 0 && u < n && v < n && G.mem_edge g u v) edges in
  all_edges_exist
  && List.length edges = n - Algo.num_components g
  && begin
       (* right count + acyclic (checked via components of the subgraph)
          implies it spans every component *)
       let sub = G.of_edges n edges in
       G.num_edges sub = List.length edges && Algo.num_components sub = Algo.num_components g
     end

let subgraph_edges g j = List.filter (fun (u, v) -> u < j && v < j) (G.edges g)

let reference p g =
  match p with
  | Build -> Answer.Graph g
  | Rooted_mis root -> Answer.Node_set (Algo.greedy_mis g ~root)
  | Triangle -> Answer.Bool (Algo.has_triangle g)
  | Square -> Answer.Bool (Algo.has_square g)
  | Diameter_at_most d -> Answer.Bool (diameter_at_most g d)
  | Two_cliques -> Answer.Bool (Algo.is_two_cliques g)
  | Eob_bfs ->
    if Algo.is_even_odd_bipartite g then Answer.Forest (Algo.bfs_forest g) else Answer.Reject
  | Bfs -> Answer.Forest (Algo.bfs_forest g)
  | Spanning_forest -> Answer.Edge_set (List.sort compare (List.map (fun (u, v) -> (min u v, max u v)) (Algo.spanning_forest g)))
  | Subgraph j -> Answer.Edge_set (subgraph_edges g j)
  | Connectivity -> Answer.Bool (Algo.is_connected g)

let valid_answer p g a =
  match (p, a) with
  | Build, Answer.Graph h -> G.equal g h
  | Rooted_mis root, Answer.Node_set s -> List.mem root s && Algo.is_maximal_independent_set g s
  | Triangle, Answer.Bool b -> b = Algo.has_triangle g
  | Square, Answer.Bool b -> b = Algo.has_square g
  | Diameter_at_most d, Answer.Bool b -> b = diameter_at_most g d
  | Two_cliques, Answer.Bool b -> b = Algo.is_two_cliques g
  | Eob_bfs, Answer.Forest parent ->
    Algo.is_even_odd_bipartite g && Algo.is_valid_bfs_forest g parent
  | Eob_bfs, Answer.Reject -> not (Algo.is_even_odd_bipartite g)
  | Bfs, Answer.Forest parent -> Algo.is_valid_bfs_forest g parent
  | Spanning_forest, Answer.Edge_set es -> is_spanning_forest g es
  | Subgraph j, Answer.Edge_set es -> List.sort compare es = subgraph_edges g j
  | Connectivity, Answer.Bool b -> b = Algo.is_connected g
  | ( ( Build | Rooted_mis _ | Triangle | Square | Diameter_at_most _ | Two_cliques | Eob_bfs
      | Bfs | Spanning_forest | Subgraph _ | Connectivity ),
      (Answer.Graph _ | Answer.Bool _ | Answer.Node_set _ | Answer.Forest _ | Answer.Edge_set _ | Answer.Reject) )
    -> false
