lib/graph/prufer.ml: Array Graph Wb_support
