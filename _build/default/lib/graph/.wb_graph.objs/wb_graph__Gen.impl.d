lib/graph/gen.ml: Algo Array Graph Hashtbl List Prufer Wb_support
