lib/graph/gen.mli: Graph Wb_support
