lib/graph/prufer.mli: Graph
