lib/graph/graph.mli: Format Wb_support
