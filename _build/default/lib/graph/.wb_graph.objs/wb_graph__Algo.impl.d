lib/graph/algo.ml: Array Graph List Queue
