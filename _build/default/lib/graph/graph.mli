(** Simple undirected labelled graphs.

    Nodes are [0 .. n-1]; the paper's identifiers [1 .. n] are [index + 1]
    (pretty-printers add the offset, nothing else does).  Neighbour arrays are
    kept sorted so membership tests are logarithmic and iteration is ordered,
    which the protocols rely on for determinism. *)

type t

val n : t -> int
(** Number of nodes. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] nodes.  Self-loops are rejected;
    duplicate and reversed duplicates are collapsed.
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

val empty : int -> t

val edges : t -> (int * int) list
(** Each edge once, as [(u, v)] with [u < v], sorted lexicographically. *)

val num_edges : t -> int
val degree : t -> int -> int
val max_degree : t -> int
val neighbors : t -> int -> int array
(** Sorted.  The returned array is owned by the graph: do not mutate. *)

val mem_edge : t -> int -> int -> bool
val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val adjacency_matrix : t -> bool array array
val of_matrix : bool array array -> t
(** Symmetrises the input; the diagonal is ignored. *)

val equal : t -> t -> bool
(** Same node count and same edge set (labelled equality). *)

val relabel : t -> int array -> t
(** [relabel g perm] renames node [i] to [perm.(i)]. *)

val induced : t -> int array -> t
(** [induced g nodes] keeps only [nodes] (distinct), renumbered
    [0 .. length - 1] in the order given. *)

val extend : t -> extra:int -> new_edges:(int * int) list -> t
(** [extend g ~extra ~new_edges] appends [extra] fresh nodes
    [n g .. n g + extra - 1] and adds [new_edges] (which may touch old and
    new nodes). *)

val complement : t -> t
val is_regular : t -> int option
(** [Some d] when every node has degree [d]. *)

val incidence_row : t -> int -> Wb_support.Bitset.t
(** The node's neighbourhood as a bitset over [0 .. n-1]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable, with the paper's 1-based identifiers. *)
