let bfs_dist g source =
  let size = Graph.n g in
  let dist = Array.make size (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let components g =
  let size = Graph.n g in
  let comp = Array.make size (-1) in
  let next = ref 0 in
  for v = 0 to size - 1 do
    if comp.(v) < 0 then begin
      let id = !next in
      incr next;
      let queue = Queue.create () in
      comp.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun w ->
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
      done
    end
  done;
  comp

let num_components g =
  let comp = components g in
  Array.fold_left max (-1) comp + 1

let is_connected g = Graph.n g = 0 || num_components g = 1

let component_roots g =
  (* Minimum node of each component, indexed by component id. *)
  let comp = components g in
  let count = Array.fold_left max (-1) comp + 1 in
  let roots = Array.make count (-1) in
  Array.iteri (fun v c -> if roots.(c) < 0 then roots.(c) <- v) comp;
  roots

let bfs_forest g =
  let size = Graph.n g in
  let comp = components g in
  let roots = component_roots g in
  let dist = Array.make size (-1) in
  Array.iter (fun r -> Array.iteri (fun v d -> if comp.(v) = comp.(r) then dist.(v) <- d) (bfs_dist g r)) roots;
  let parent = Array.make size (-1) in
  for v = 0 to size - 1 do
    if dist.(v) > 0 then begin
      (* Minimum neighbour in the previous layer: canonical parent. *)
      let best = ref (-1) in
      Graph.iter_neighbors g v (fun w -> if dist.(w) = dist.(v) - 1 && !best < 0 then best := w);
      parent.(v) <- !best
    end
  done;
  parent

let is_valid_bfs_forest g parent =
  let size = Graph.n g in
  if Array.length parent <> size then false
  else begin
    let comp = components g in
    let roots = component_roots g in
    let dist = Array.make size (-1) in
    Array.iter (fun r -> Array.iteri (fun v d -> if comp.(v) = comp.(r) then dist.(v) <- d) (bfs_dist g r)) roots;
    let ok = ref true in
    for v = 0 to size - 1 do
      if dist.(v) = 0 then begin
        if parent.(v) <> -1 then ok := false
      end
      else if parent.(v) < 0 || parent.(v) >= size then ok := false
      else if not (Graph.mem_edge g v parent.(v)) then ok := false
      else if dist.(parent.(v)) <> dist.(v) - 1 then ok := false
    done;
    !ok
  end

let bipartition g =
  let size = Graph.n g in
  let side = Array.make size (-1) in
  let ok = ref true in
  for v = 0 to size - 1 do
    if side.(v) < 0 then begin
      side.(v) <- 0;
      let queue = Queue.create () in
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun w ->
            if side.(w) < 0 then begin
              side.(w) <- 1 - side.(u);
              Queue.add w queue
            end
            else if side.(w) = side.(u) then ok := false)
      done
    end
  done;
  if !ok then Some side else None

let is_even_odd_bipartite g =
  (* Paper identifiers are index + 1, so indices of equal parity share
     identifier parity as well. *)
  List.for_all (fun (u, v) -> (u - v) mod 2 <> 0) (Graph.edges g)

let degeneracy g =
  let size = Graph.n g in
  if size = 0 then (0, [||])
  else begin
    let deg = Array.init size (Graph.degree g) in
    let removed = Array.make size false in
    (* Bucket queue over current degrees gives the O(n + m) Matula-Beck order. *)
    let buckets = Array.make size [] in
    Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
    let order = Array.make size 0 in
    let k = ref 0 in
    let cursor = ref 0 in
    for step = 0 to size - 1 do
      if !cursor > 0 then decr cursor;
      let v =
        let found = ref (-1) in
        while !found < 0 do
          match buckets.(!cursor) with
          | [] -> incr cursor
          | u :: rest ->
            buckets.(!cursor) <- rest;
            (* Lazily skip stale bucket entries. *)
            if (not removed.(u)) && deg.(u) = !cursor then found := u
        done;
        !found
      in
      removed.(v) <- true;
      order.(step) <- v;
      k := max !k deg.(v);
      Graph.iter_neighbors g v (fun w ->
          if not removed.(w) then begin
            deg.(w) <- deg.(w) - 1;
            buckets.(deg.(w)) <- w :: buckets.(deg.(w))
          end)
    done;
    (!k, order)
  end

let has_triangle g =
  let found = ref false in
  List.iter
    (fun (u, v) ->
      if not !found then
        Graph.iter_neighbors g u (fun w -> if w <> v && Graph.mem_edge g v w then found := true))
    (Graph.edges g);
  !found

let count_triangles g =
  let count = ref 0 in
  List.iter
    (fun (u, v) -> Graph.iter_neighbors g u (fun w -> if w > v && Graph.mem_edge g v w then incr count))
    (Graph.edges g);
  !count

let has_square g =
  let size = Graph.n g in
  let found = ref false in
  (* Two nodes with two common neighbours close a 4-cycle. *)
  let common = Array.make size 0 in
  for u = 0 to size - 1 do
    if not !found then begin
      Array.fill common 0 size 0;
      Graph.iter_neighbors g u (fun w ->
          Graph.iter_neighbors g w (fun v ->
              if v > u then begin
                common.(v) <- common.(v) + 1;
                if common.(v) >= 2 then found := true
              end))
    end
  done;
  !found

let split_degeneracy g =
  let size = Graph.n g in
  (* Greedy elimination is safe for this class (removing an eligible node
     preserves the eligibility of any witnessing order), so feasibility of a
     given k is a straight simulation. *)
  let feasible k =
    let removed = Array.make size false in
    let deg = Array.init size (Graph.degree g) in
    let remaining = ref size in
    let progress = ref true in
    while !remaining > 0 && !progress do
      progress := false;
      for v = 0 to size - 1 do
        if (not removed.(v)) && (deg.(v) <= k || deg.(v) >= !remaining - k - 1) then begin
          removed.(v) <- true;
          decr remaining;
          Graph.iter_neighbors g v (fun w -> if not removed.(w) then deg.(w) <- deg.(w) - 1);
          progress := true
        end
      done
    done;
    !remaining = 0
  in
  let rec go k = if feasible k then k else go (k + 1) in
  if size = 0 then 0 else go 0

let is_independent_set g nodes =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> not (Graph.mem_edge g v w)) rest && go rest
  in
  go nodes

let is_maximal_independent_set g nodes =
  is_independent_set g nodes
  && begin
       let inside = Array.make (Graph.n g) false in
       List.iter (fun v -> inside.(v) <- true) nodes;
       let extendable = ref false in
       for v = 0 to Graph.n g - 1 do
         if (not inside.(v)) && not (Graph.fold_neighbors g v (fun acc w -> acc || inside.(w)) false) then
           extendable := true
       done;
       not !extendable
     end

let greedy_mis g ~root =
  let size = Graph.n g in
  if root < 0 || root >= size then invalid_arg "Algo.greedy_mis: bad root";
  let inside = Array.make size false in
  inside.(root) <- true;
  for v = 0 to size - 1 do
    if (not (Graph.mem_edge g root v || v = root))
       && not (Graph.fold_neighbors g v (fun acc w -> acc || inside.(w)) false)
    then inside.(v) <- true
  done;
  let out = ref [] in
  for v = size - 1 downto 0 do
    if inside.(v) then out := v :: !out
  done;
  !out

let diameter g =
  if not (is_connected g) then invalid_arg "Algo.diameter: disconnected";
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    Array.iter (fun d -> best := max !best d) (bfs_dist g v)
  done;
  !best

let is_two_cliques g =
  let size = Graph.n g in
  if size = 0 || size mod 2 = 1 || num_components g <> 2 then false
  else begin
    let half = size / 2 in
    let comp = components g in
    let sizes = Array.make 2 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    let regular = ref true in
    for v = 0 to size - 1 do
      if Graph.degree g v <> half - 1 then regular := false
    done;
    (* A connected (half-1)-regular component on half nodes is a clique. *)
    sizes.(0) = half && sizes.(1) = half && !regular
  end

let spanning_forest g =
  let size = Graph.n g in
  let visited = Array.make size false in
  let acc = ref [] in
  for v = 0 to size - 1 do
    if not visited.(v) then begin
      visited.(v) <- true;
      let queue = Queue.create () in
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun w ->
            if not visited.(w) then begin
              visited.(w) <- true;
              acc := (u, w) :: !acc;
              Queue.add w queue
            end)
      done
    end
  done;
  !acc
