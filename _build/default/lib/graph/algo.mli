(** Reference graph algorithms.

    These are the sequential ground truths the whiteboard protocols are
    checked against: BFS forests, connectivity, degeneracy orderings,
    triangle search, independent sets, bipartitions. *)

val bfs_dist : Graph.t -> int -> int array
(** Distances from a source; [-1] for unreachable nodes. *)

val bfs_forest : Graph.t -> int array
(** The paper's canonical BFS forest: in every connected component the root
    is the minimum-identifier node; [result.(v)] is the parent of [v]
    ([-1] for roots).  Parents are the minimum-identifier neighbour in the
    previous layer, which makes the forest unique and comparable. *)

val is_valid_bfs_forest : Graph.t -> int array -> bool
(** Accepts any parent array that is a legal BFS forest in the paper's sense:
    roots are the per-component minima, every non-root's parent is a
    neighbour, and parent chains realise true shortest-path distances from
    the root.  (Protocols may return any valid forest, not necessarily the
    canonical one.) *)

val components : Graph.t -> int array
(** [result.(v)] is the component index of [v]; components are numbered by
    increasing minimum node. *)

val num_components : Graph.t -> int
val is_connected : Graph.t -> bool

val bipartition : Graph.t -> int array option
(** [Some side] with [side.(v)] in {0,1} when 2-colourable, else [None]. *)

val is_even_odd_bipartite : Graph.t -> bool
(** No edge joins two nodes whose paper identifiers ([index + 1]) share
    parity — Section 5.2's promise class. *)

val degeneracy : Graph.t -> int * int array
(** [(k, order)] where [order] is a removal order witnessing degeneracy [k]
    (repeatedly removing a minimum-degree node, Matula-Beck). *)

val has_triangle : Graph.t -> bool
val count_triangles : Graph.t -> int

val has_square : Graph.t -> bool
(** A 4-cycle as a (not necessarily induced) subgraph — the "does G contain
    a square?" question from the paper's introduction. *)

val split_degeneracy : Graph.t -> int
(** The smallest [k] admitting an elimination order in which every node has
    degree [<= k] {e or} [>= remaining - k - 1] in the graph induced by the
    not-yet-removed nodes — the extended class of Section 3's closing
    remark (complete graphs have split-degeneracy 0). *)

val is_independent_set : Graph.t -> int list -> bool
val is_maximal_independent_set : Graph.t -> int list -> bool
val greedy_mis : Graph.t -> root:int -> int list
(** The reference greedy MIS containing [root], scanning nodes in identifier
    order — matches what the SIMSYNC protocol produces under the
    identifier-order adversary. *)

val diameter : Graph.t -> int
(** Of a connected graph; @raise Invalid_argument when disconnected. *)

val is_two_cliques : Graph.t -> bool
(** Whether the graph is the disjoint union of two same-size cliques
    (the 2-CLIQUES promise asks this of (n-1)-regular 2n-node graphs). *)

val spanning_forest : Graph.t -> (int * int) list
(** Arbitrary spanning forest edges, one tree per component. *)
