type t = { size : int; adj : int array array }

let n g = g.size

let check_node size v op =
  if v < 0 || v >= size then invalid_arg (Printf.sprintf "Graph.%s: node %d out of range [0,%d)" op v size)

let of_edges size edge_list =
  if size < 0 then invalid_arg "Graph.of_edges: negative size";
  let seen = Hashtbl.create (2 * List.length edge_list + 1) in
  let buckets = Array.make size [] in
  let add_edge (u, v) =
    check_node size u "of_edges";
    check_node size v "of_edges";
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    let key = (min u v, max u v) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v)
    end
  in
  List.iter add_edge edge_list;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        a)
      buckets
  in
  { size; adj }

let empty size = of_edges size []

let neighbors g v =
  check_node g.size v "neighbors";
  g.adj.(v)

let degree g v = Array.length (neighbors g v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.size - 1 do
    best := max !best (degree g v)
  done;
  !best

let edges g =
  let out = ref [] in
  for u = g.size - 1 downto 0 do
    let nbrs = g.adj.(u) in
    for i = Array.length nbrs - 1 downto 0 do
      if nbrs.(i) > u then out := (u, nbrs.(i)) :: !out
    done
  done;
  !out

let num_edges g = Array.fold_left (fun acc a -> acc + Array.length a) 0 g.adj / 2

let mem_edge g u v =
  check_node g.size u "mem_edge";
  check_node g.size v "mem_edge";
  let nbrs = g.adj.(u) in
  let rec search lo hi =
    if lo > hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if nbrs.(mid) = v then true
      else if nbrs.(mid) < v then search (mid + 1) hi
      else search lo (mid - 1)
    end
  in
  search 0 (Array.length nbrs - 1)

let iter_neighbors g v f = Array.iter f (neighbors g v)

let fold_neighbors g v f init = Array.fold_left f init (neighbors g v)

let adjacency_matrix g =
  let m = Array.make_matrix g.size g.size false in
  Array.iteri (fun u nbrs -> Array.iter (fun v -> m.(u).(v) <- true) nbrs) g.adj;
  m

let of_matrix m =
  let size = Array.length m in
  Array.iter (fun row -> if Array.length row <> size then invalid_arg "Graph.of_matrix: not square") m;
  let acc = ref [] in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      if m.(u).(v) || m.(v).(u) then acc := (u, v) :: !acc
    done
  done;
  of_edges size !acc

let equal a b = a.size = b.size && a.adj = b.adj

let relabel g perm =
  if Array.length perm <> g.size || not (Wb_support.Perm.is_permutation perm) then
    invalid_arg "Graph.relabel: not a permutation of the node set";
  of_edges g.size (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let induced g nodes =
  let index = Hashtbl.create (Array.length nodes) in
  Array.iteri
    (fun i v ->
      check_node g.size v "induced";
      if Hashtbl.mem index v then invalid_arg "Graph.induced: duplicate node";
      Hashtbl.replace index v i)
    nodes;
  let acc = ref [] in
  Array.iteri
    (fun i v ->
      iter_neighbors g v (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when j > i -> acc := (i, j) :: !acc
          | Some _ | None -> ()))
    nodes;
  of_edges (Array.length nodes) !acc

let extend g ~extra ~new_edges =
  if extra < 0 then invalid_arg "Graph.extend";
  of_edges (g.size + extra) (List.rev_append (edges g) new_edges)

let complement g =
  let acc = ref [] in
  for u = 0 to g.size - 1 do
    for v = u + 1 to g.size - 1 do
      if not (mem_edge g u v) then acc := (u, v) :: !acc
    done
  done;
  of_edges g.size !acc

let is_regular g =
  if g.size = 0 then Some 0
  else begin
    let d = degree g 0 in
    let rec go v = if v >= g.size then Some d else if degree g v <> d then None else go (v + 1) in
    go 1
  end

let incidence_row g v =
  let row = Wb_support.Bitset.create g.size in
  iter_neighbors g v (fun w -> Wb_support.Bitset.add row w);
  row

let pp ppf g =
  Format.fprintf ppf "@[<v>graph on %d nodes, %d edges@," g.size (num_edges g);
  List.iter (fun (u, v) -> Format.fprintf ppf "  %d -- %d@," (u + 1) (v + 1)) (edges g);
  Format.fprintf ppf "@]"
