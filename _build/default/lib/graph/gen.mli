(** Workload generators.

    Every random generator is driven by a {!Wb_support.Prng.t}, so workloads
    are reproducible from a seed.  The families mirror the classes the paper
    reasons about: forests and k-degenerate graphs (Section 3), even-odd
    bipartite graphs (Section 5.2), two-clique unions (Section 5.1) and
    general graphs. *)

val path : int -> Graph.t
val cycle : int -> Graph.t
val star : int -> Graph.t
(** Node 0 is the centre. *)

val complete : int -> Graph.t
val complete_bipartite : int -> int -> Graph.t
val grid : int -> int -> Graph.t
val hypercube : int -> Graph.t
(** [hypercube d] has [2^d] nodes. *)

val petersen : unit -> Graph.t

val random_tree : Wb_support.Prng.t -> int -> Graph.t
(** Uniform labelled tree (via Prüfer codes) for [n >= 1]. *)

val random_forest : Wb_support.Prng.t -> int -> keep:float -> Graph.t
(** Uniform tree with each edge kept independently with probability [keep]. *)

val random_gnp : Wb_support.Prng.t -> int -> float -> Graph.t
val random_gnm : Wb_support.Prng.t -> int -> int -> Graph.t
(** Uniform among graphs with exactly [m] edges.
    @raise Invalid_argument if [m] exceeds [n(n-1)/2]. *)

val random_connected : Wb_support.Prng.t -> int -> float -> Graph.t
(** [random_gnp] conditioned on connectivity by adding a uniform spanning
    tree skeleton first. *)

val random_ktree : Wb_support.Prng.t -> int -> k:int -> Graph.t
(** Random k-tree on [n >= k + 1] nodes: degeneracy exactly [k] (for
    [n > k + 1]), treewidth [k]. *)

val random_kdegenerate : Wb_support.Prng.t -> int -> k:int -> Graph.t
(** Each node joins at most [k] uniformly chosen earlier nodes (then the node
    labels are shuffled, so the elimination order is hidden). *)

val apollonian : Wb_support.Prng.t -> int -> Graph.t
(** Random Apollonian network (planar, 3-degenerate) on [n >= 3] nodes. *)

val random_split_degenerate : Wb_support.Prng.t -> int -> k:int -> Graph.t
(** A graph of split-degeneracy at most [k] (Section 3's closing remark):
    built along a hidden elimination order in which each node is either
    {e sparse} (at most [k] later neighbours) or {e dense} (at most [k]
    later non-neighbours), then label-shuffled. *)

val preferential_attachment : Wb_support.Prng.t -> int -> m:int -> Graph.t
(** Barabási-Albert preferential attachment: each new node links to [m]
    distinct existing nodes drawn proportionally to degree.  Produces
    heavy-tailed "social/call graph" degree sequences of degeneracy at most
    [m] — the massive-sparse-graph workload from the paper's introduction.
    Requires [n >= m >= 1].  Node labels are then shuffled. *)

val random_bipartite : Wb_support.Prng.t -> int -> int -> float -> Graph.t
(** [random_bipartite g a b p]: parts [{0..a-1}] and [{a..a+b-1}]. *)

val random_eob : Wb_support.Prng.t -> int -> float -> Graph.t
(** Even-odd bipartite: each (odd identifier, even identifier) pair is an
    edge with probability [p]; identifier parity = (index + 1) parity. *)

val two_cliques : int -> Graph.t
(** Disjoint union of two [K_half] on [2 * half] nodes — a yes-instance of
    2-CLIQUES.  Nodes of the two cliques are interleaved so that schedules
    cannot exploit labelling. *)

val two_cliques_shuffled : Wb_support.Prng.t -> int -> Graph.t

val near_two_cliques : int -> Graph.t
(** [K_{half,half}] minus a perfect matching: an (half-1)-regular connected
    graph on [2 * half] nodes — a no-instance of 2-CLIQUES that satisfies the
    same regularity promise. *)

val triangle_with_tail : int -> Graph.t
(** A triangle plus a pendant path, [n >= 3] nodes: a minimal yes-instance
    for TRIANGLE. *)

val all_labelled_graphs : int -> Graph.t list
(** Every labelled simple graph on [n] nodes ([2^(n(n-1)/2)] of them; keep
    [n <= 6]). *)

val all_connected_graphs : int -> Graph.t list
