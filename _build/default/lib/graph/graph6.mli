(** The graph6 ASCII format (McKay) for simple graphs, used to serialise
    test fixtures compactly.  Supports graphs up to 258047 nodes (short and
    medium length headers). *)

val encode : Graph.t -> string
val decode : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)
