module Prng = Wb_support.Prng

let path n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need at least three nodes";
  Graph.of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges n !acc

let complete_bipartite a b =
  let acc = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges (a + b) !acc

let grid rows cols =
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (id r c, id r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (id r c, id (r + 1) c) :: !acc
    done
  done;
  Graph.of_edges (rows * cols) !acc

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Gen.hypercube";
  let n = 1 lsl d in
  let acc = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let w = v lxor (1 lsl b) in
      if w > v then acc := (v, w) :: !acc
    done
  done;
  Graph.of_edges n !acc

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (i + 5, ((i + 2) mod 5) + 5)) in
  Graph.of_edges 10 (outer @ spokes @ inner)

let random_tree rng n =
  if n < 1 then invalid_arg "Gen.random_tree"
  else if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges 2 [ (0, 1) ]
  else Prufer.decode n (Array.init (n - 2) (fun _ -> Prng.int rng n))

let random_forest rng n ~keep =
  if n = 0 then Graph.empty 0
  else begin
    let tree = random_tree rng n in
    Graph.of_edges n (List.filter (fun _ -> Prng.float rng < keep) (Graph.edges tree))
  end

let random_gnp rng n p =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng < p then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges n !acc

let all_pairs n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  Array.of_list !acc

let random_gnm rng n m =
  let pairs = all_pairs n in
  if m < 0 || m > Array.length pairs then invalid_arg "Gen.random_gnm";
  let idx = Prng.sample_without_replacement rng m (Array.length pairs) in
  Graph.of_edges n (Array.to_list (Array.map (fun i -> pairs.(i)) idx))

let random_connected rng n p =
  if n = 0 then Graph.empty 0
  else begin
    let skeleton = Graph.edges (random_tree rng n) in
    let extra = Graph.edges (random_gnp rng n p) in
    Graph.of_edges n (List.rev_append skeleton extra)
  end

let random_ktree rng n ~k =
  if k < 1 || n < k + 1 then invalid_arg "Gen.random_ktree";
  let cliques = Wb_support.Dynarray.create () in
  let base = Array.init (k + 1) (fun i -> i) in
  let acc = ref [] in
  for u = 0 to k do
    for v = u + 1 to k do
      acc := (u, v) :: !acc
    done
  done;
  (* Every k-subset of the root clique is attachable. *)
  for drop = 0 to k do
    Wb_support.Dynarray.push cliques (Array.of_list (List.filter (fun v -> v <> drop) (Array.to_list base)))
  done;
  for v = k + 1 to n - 1 do
    let host = Wb_support.Dynarray.get cliques (Prng.int rng (Wb_support.Dynarray.length cliques)) in
    Array.iter (fun u -> acc := (u, v) :: !acc) host;
    (* New attachable k-cliques: v together with each (k-1)-subset of host. *)
    for drop = 0 to k - 1 do
      let fresh = Array.make k v in
      let j = ref 0 in
      Array.iteri
        (fun i u ->
          if i <> drop then begin
            fresh.(!j) <- u;
            incr j
          end)
        host;
      fresh.(k - 1) <- v;
      Wb_support.Dynarray.push cliques fresh
    done
  done;
  Graph.of_edges n !acc

let random_kdegenerate rng n ~k =
  if k < 0 then invalid_arg "Gen.random_kdegenerate";
  let acc = ref [] in
  for v = 1 to n - 1 do
    let how_many = min v (Prng.int rng (k + 1)) in
    let chosen = Prng.sample_without_replacement rng how_many v in
    Array.iter (fun u -> acc := (u, v) :: !acc) chosen
  done;
  let g = Graph.of_edges n !acc in
  Graph.relabel g (Wb_support.Perm.random rng n)

let apollonian rng n =
  if n < 3 then invalid_arg "Gen.apollonian";
  let faces = Wb_support.Dynarray.create () in
  Wb_support.Dynarray.push faces (0, 1, 2);
  let acc = ref [ (0, 1); (1, 2); (0, 2) ] in
  for v = 3 to n - 1 do
    let i = Prng.int rng (Wb_support.Dynarray.length faces) in
    let a, b, c = Wb_support.Dynarray.get faces i in
    acc := (a, v) :: (b, v) :: (c, v) :: !acc;
    Wb_support.Dynarray.set faces i (a, b, v);
    Wb_support.Dynarray.push faces (a, c, v);
    Wb_support.Dynarray.push faces (b, c, v)
  done;
  Graph.of_edges n !acc

let random_split_degenerate rng n ~k =
  if k < 0 then invalid_arg "Gen.random_split_degenerate";
  let acc = ref [] in
  (* Node v's later set is {v+1 .. n-1}; sparse nodes pick <= k neighbours
     there, dense nodes pick <= k non-neighbours. *)
  for v = 0 to n - 2 do
    let later = n - 1 - v in
    let how_many = min later (Prng.int rng (k + 1)) in
    let chosen = Prng.sample_without_replacement rng how_many later in
    let chosen_set = Array.map (fun i -> v + 1 + i) chosen in
    if Prng.bool rng then
      (* sparse: chosen are the neighbours *)
      Array.iter (fun u -> acc := (v, u) :: !acc) chosen_set
    else begin
      (* dense: chosen are the non-neighbours *)
      let excluded = Array.to_list chosen_set in
      for u = v + 1 to n - 1 do
        if not (List.mem u excluded) then acc := (v, u) :: !acc
      done
    end
  done;
  Graph.relabel (Graph.of_edges n !acc) (Wb_support.Perm.random rng n)

let preferential_attachment rng n ~m =
  if m < 1 || n < m then invalid_arg "Gen.preferential_attachment";
  (* Repeated-endpoint list: picking a uniform entry is degree-proportional. *)
  let endpoints = Wb_support.Dynarray.create () in
  let acc = ref [] in
  (* Seed: a star on the first m + 1 nodes (gives everyone initial degree). *)
  for v = 1 to m do
    acc := (0, v) :: !acc;
    Wb_support.Dynarray.push endpoints 0;
    Wb_support.Dynarray.push endpoints v
  done;
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let target =
        Wb_support.Dynarray.get endpoints (Prng.int rng (Wb_support.Dynarray.length endpoints))
      in
      Hashtbl.replace chosen target ()
    done;
    Hashtbl.iter
      (fun u () ->
        acc := (u, v) :: !acc;
        Wb_support.Dynarray.push endpoints u;
        Wb_support.Dynarray.push endpoints v)
      chosen
  done;
  Graph.relabel (Graph.of_edges n !acc) (Wb_support.Perm.random rng n)

let random_bipartite rng a b p =
  let acc = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      if Prng.float rng < p then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges (a + b) !acc

let random_eob rng n p =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (u - v) mod 2 <> 0 && Prng.float rng < p then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges n !acc

let two_cliques half =
  if half < 1 then invalid_arg "Gen.two_cliques";
  let acc = ref [] in
  (* Clique membership = node parity, so identifiers alone reveal nothing a
     protocol could not learn from its neighbourhood anyway. *)
  for u = 0 to (2 * half) - 1 do
    for v = u + 1 to (2 * half) - 1 do
      if (u - v) mod 2 = 0 then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges (2 * half) !acc

let two_cliques_shuffled rng half =
  Graph.relabel (two_cliques half) (Wb_support.Perm.random rng (2 * half))

let near_two_cliques half =
  if half < 2 then invalid_arg "Gen.near_two_cliques";
  let acc = ref [] in
  for u = 0 to half - 1 do
    for v = half to (2 * half) - 1 do
      if v - half <> u then acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges (2 * half) !acc

let triangle_with_tail n =
  if n < 3 then invalid_arg "Gen.triangle_with_tail";
  let tail = List.init (n - 3) (fun i -> (i + 2, i + 3)) in
  Graph.of_edges n ((0, 1) :: (1, 2) :: (0, 2) :: tail)

let all_labelled_graphs n =
  if n < 0 || n > 6 then invalid_arg "Gen.all_labelled_graphs: too many nodes";
  let pairs = all_pairs n in
  let total = 1 lsl Array.length pairs in
  List.init total (fun mask ->
      let acc = ref [] in
      Array.iteri (fun i e -> if mask land (1 lsl i) <> 0 then acc := e :: !acc) pairs;
      Graph.of_edges n !acc)

let all_connected_graphs n = List.filter Algo.is_connected (all_labelled_graphs n)
