(** Prüfer codes: the classical bijection between labelled trees on [n]
    nodes and sequences in [\[0, n)^(n-2)].  Decoding a uniformly random
    sequence therefore samples labelled trees exactly uniformly. *)

val encode : Graph.t -> int array
(** @raise Invalid_argument when the graph is not a tree on [n >= 2] nodes. *)

val decode : int -> int array -> Graph.t
(** [decode n code] rebuilds the tree.  Requires [Array.length code = n - 2]
    and entries in range. *)
