let encode g =
  let size = Graph.n g in
  if size < 2 then invalid_arg "Prufer.encode: need at least two nodes";
  if Graph.num_edges g <> size - 1 then invalid_arg "Prufer.encode: not a tree";
  let deg = Array.init size (Graph.degree g) in
  let removed = Array.make size false in
  let leaves = Wb_support.Heap.create ~cmp:compare in
  Array.iteri (fun v d -> if d = 1 then Wb_support.Heap.push leaves v) deg;
  let code = Array.make (size - 2) 0 in
  for i = 0 to size - 3 do
    match Wb_support.Heap.pop leaves with
    | None -> invalid_arg "Prufer.encode: not a tree (disconnected)"
    | Some leaf ->
      removed.(leaf) <- true;
      let parent = ref (-1) in
      Graph.iter_neighbors g leaf (fun w -> if not removed.(w) then parent := w);
      if !parent < 0 then invalid_arg "Prufer.encode: not a tree";
      code.(i) <- !parent;
      deg.(!parent) <- deg.(!parent) - 1;
      if deg.(!parent) = 1 then Wb_support.Heap.push leaves !parent
  done;
  code

let decode size code =
  if size < 2 then invalid_arg "Prufer.decode: need at least two nodes";
  if Array.length code <> size - 2 then invalid_arg "Prufer.decode: wrong code length";
  Array.iter (fun v -> if v < 0 || v >= size then invalid_arg "Prufer.decode: entry out of range") code;
  let deg = Array.make size 1 in
  Array.iter (fun v -> deg.(v) <- deg.(v) + 1) code;
  let leaves = Wb_support.Heap.create ~cmp:compare in
  Array.iteri (fun v d -> if d = 1 then Wb_support.Heap.push leaves v) deg;
  let tree_edges = ref [] in
  Array.iter
    (fun v ->
      match Wb_support.Heap.pop leaves with
      | None -> assert false
      | Some leaf ->
        tree_edges := (leaf, v) :: !tree_edges;
        deg.(leaf) <- 0;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then Wb_support.Heap.push leaves v)
    code;
  (* The two remaining degree-1 nodes close the tree. *)
  let rest = ref [] in
  Array.iteri (fun v d -> if d = 1 then rest := v :: !rest) deg;
  (match !rest with
  | [ a; b ] -> tree_edges := (a, b) :: !tree_edges
  | _ -> assert false);
  Graph.of_edges size !tree_edges
