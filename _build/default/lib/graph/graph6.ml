(* graph6: n is encoded in 1 or 4 chars, then the upper triangle of the
   adjacency matrix (column-major: pairs (0,1),(0,2),(1,2),(0,3),...) is
   packed 6 bits per char, each char offset by 63. *)

let encode_size buf n =
  if n < 0 then invalid_arg "Graph6.encode: negative size"
  else if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else if n <= 258047 then begin
    Buffer.add_char buf (Char.chr 126);
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end
  else invalid_arg "Graph6.encode: too large"

let encode g =
  let n = Graph.n g in
  let buf = Buffer.create 16 in
  encode_size buf n;
  let bit_count = n * (n - 1) / 2 in
  let chunk = ref 0 and filled = ref 0 and emitted = ref 0 in
  let flush_partial () =
    if !filled > 0 then begin
      Buffer.add_char buf (Char.chr ((!chunk lsl (6 - !filled)) + 63));
      chunk := 0;
      filled := 0
    end
  in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      chunk := (!chunk lsl 1) lor (if Graph.mem_edge g u v then 1 else 0);
      incr filled;
      incr emitted;
      if !filled = 6 then begin
        Buffer.add_char buf (Char.chr (!chunk + 63));
        chunk := 0;
        filled := 0
      end
    done
  done;
  assert (!emitted = bit_count);
  flush_partial ();
  Buffer.contents buf

let decode s =
  let len = String.length s in
  if len = 0 then invalid_arg "Graph6.decode: empty";
  let sextet i =
    if i >= len then invalid_arg "Graph6.decode: truncated";
    let c = Char.code s.[i] - 63 in
    if c < 0 || c > 63 then invalid_arg "Graph6.decode: bad character";
    c
  in
  let n, data_start =
    if s.[0] = '~' then begin
      if len >= 2 && s.[1] = '~' then invalid_arg "Graph6.decode: huge graphs unsupported"
      else ((sextet 1 lsl 12) lor (sextet 2 lsl 6) lor sextet 3, 4)
    end
    else (sextet 0, 1)
  in
  let acc = ref [] in
  let bit_index = ref 0 in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      let char_pos = data_start + (!bit_index / 6) in
      let bit_pos = 5 - (!bit_index mod 6) in
      if sextet char_pos land (1 lsl bit_pos) <> 0 then acc := (u, v) :: !acc;
      incr bit_index
    done
  done;
  Graph.of_edges n !acc
