lib/bignum/nat.ml: Array Char Format List Printf Stdlib String
