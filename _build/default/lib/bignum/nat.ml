let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

(* Little-endian digits in [0, base); no trailing zeros; zero = [||]. *)
type t = int array

let zero : t = [||]
let one : t = [| 1 |]

let normalize (a : int array) : t =
  let len = ref (Array.length a) in
  while !len > 0 && a.(!len - 1) = 0 do decr len done;
  if !len = Array.length a then a else Array.sub a 0 !len

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  let rec digits v acc = if v = 0 then List.rev acc else digits (v lsr base_bits) ((v land base_mask) :: acc) in
  Array.of_list (digits v [])

let is_zero a = Array.length a = 0

let to_int_opt a =
  (* 63-bit native ints hold at most three 30-bit digits, partially. *)
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) lsr base_bits then None
    else go (i - 1) ((acc lsl base_bits) lor a.(i))
  in
  go (Array.length a - 1) 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = !carry + (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - !borrow - (if i < lb then b.(i) else 0) in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        (* 30-bit * 30-bit + 30-bit + 30-bit fits in 62 bits. *)
        let s = (a.(i) * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize r
  end

let bit_length a =
  let l = Array.length a in
  if l = 0 then 0
  else begin
    let top = a.(l - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((l - 1) * base_bits) + width top 0
  end

let log2_floor a =
  if is_zero a then invalid_arg "Nat.log2_floor: zero";
  bit_length a - 1

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left";
  if is_zero a then zero
  else begin
    let digit_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + digit_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + digit_shift) <- r.(i + digit_shift) lor (v land base_mask);
      r.(i + digit_shift + 1) <- r.(i + digit_shift + 1) lor (v lsr base_bits)
    done;
    normalize r
  end

let nth_bit a i =
  let d = i / base_bits in
  d < Array.length a && a.(d) land (1 lsl (i mod base_bits)) <> 0

(* Binary long division: simple and fast enough for the repository's use
   (decimal printing and counting-bound arithmetic). *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let quotient_bits = Array.make ((bit_length a + base_bits - 1) / base_bits + 1) 0 in
    let rem = ref zero in
    for i = bit_length a - 1 downto 0 do
      rem := shift_left !rem 1;
      if nth_bit a i then rem := add !rem one;
      if compare !rem b >= 0 then begin
        rem := sub !rem b;
        quotient_bits.(i / base_bits) <- quotient_bits.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (normalize quotient_bits, !rem)
  end

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go b e acc =
    if e = 0 then acc
    else go (mul b b) (e / 2) (if e land 1 = 1 then mul acc b else acc)
  in
  go b e one

let pow_int b e = pow (of_int b) e

let sum l = List.fold_left add zero l

(* Decimal conversion goes through base 10^9 chunks via single-digit ops. *)
let divmod_small (a : t) d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    (* rem < d < 2^30, so rem * base + digit < 2^60. *)
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let to_string a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let v = ref a in
    while not (is_zero !v) do
      let q, r = divmod_small !v 1_000_000_000 in
      chunks := r :: !chunks;
      v := q
    done;
    match !chunks with
    | [] -> assert false
    | first :: rest ->
      String.concat "" (string_of_int first :: List.map (Printf.sprintf "%09d") rest)
  end

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  let ten = of_int 10 in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a digit";
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let pp ppf a = Format.pp_print_string ppf (to_string a)
