(** Signed arbitrary-precision integers, as a thin layer over {!Nat}.

    Used where intermediate quantities may dip below zero, e.g. while the
    output function of the BUILD protocol subtracts pruned identifiers from
    power sums and must detect inconsistent (non-k-degenerate) inputs. *)

type t

val zero : t
val one : t
val of_int : int -> t
val of_nat : Nat.t -> t
val to_nat_opt : t -> Nat.t option
(** [Some] magnitude when the value is non-negative. *)

val to_int_opt : t -> int option
val sign : t -> int
(** -1, 0 or 1. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
