type t = { sign : int; mag : Nat.t }
(* Invariant: sign ∈ {-1, 0, 1} and sign = 0 iff mag = 0. *)

let make sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }

let of_int v = if v >= 0 then make 1 (Nat.of_int v) else make (-1) (Nat.of_int (-v))

let of_nat n = make 1 n

let to_nat_opt v = if v.sign >= 0 then Some v.mag else None

let to_int_opt v =
  match Nat.to_int_opt v.mag with
  | None -> None
  | Some m -> Some (if v.sign < 0 then -m else m)

let sign v = v.sign

let neg v = make (-v.sign) v.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Nat.sub a.mag b.mag)
    else make b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b = make (a.sign * b.sign) (Nat.mul a.mag b.mag)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else a.sign * Nat.compare a.mag b.mag

let equal a b = compare a b = 0

let to_string v =
  match v.sign with
  | 0 -> "0"
  | s when s > 0 -> Nat.to_string v.mag
  | _ -> "-" ^ Nat.to_string v.mag

let pp ppf v = Format.pp_print_string ppf (to_string v)
