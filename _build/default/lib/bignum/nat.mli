(** Arbitrary-precision natural numbers.

    The container is sealed, so instead of zarith the repository carries its
    own bignums.  They back the power-sum neighbourhood encoding of Section 3
    (sums of [ID^p] up to [n^(k+1)]) and the exact counting lower bounds of
    Lemma 3 (numbers like [2^(n^2/4)]).

    Representation: little-endian digit array in base [2^30], no trailing
    zero digits, so every value has a unique representation and structural
    equality coincides with numeric equality. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** Requires a non-negative argument. *)

val to_int_opt : t -> int option
(** [Some v] when the value fits in a native [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument when the result would be negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)].  @raise Division_by_zero. *)

val pow : t -> int -> t
(** [pow b e] with [e >= 0]. *)

val pow_int : int -> int -> t
(** [pow_int b e] = [pow (of_int b) e]. *)

val shift_left : t -> int -> t
(** Multiplication by [2^k]. *)

val bit_length : t -> int
(** Bits in the binary representation; [bit_length zero = 0].  This is
    [ceil (log2 (v + 1))], the quantity the counting bounds compare. *)

val nth_bit : t -> int -> bool
(** [nth_bit v i] is bit [i] (little-endian) of the binary representation. *)

val to_string : t -> string
val of_string : string -> t
(** Decimal.  @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

val sum : t list -> t
val log2_floor : t -> int
(** [log2_floor v] for [v > 0]; @raise Invalid_argument on zero. *)
