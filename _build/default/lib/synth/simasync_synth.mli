(** Exhaustive SIMASYNC protocol existence at tiny [n], by SAT.

    A SIMASYNC protocol with a [B]-letter message alphabet is exactly a
    function from views to letters such that any two instances that must
    receive different outputs produce different whiteboard vectors (the
    output side needs no encoding: with unbounded output computation, any
    distinguishing message function can be completed into a protocol).

    This gives the {e finite-size ground truth} for the Table 2 "no" cells:
    e.g. the minimal alphabet for TRIANGLE at [n = 4, 5] can be compared
    against MIS and against the same problems under SIMSYNC
    ({!Simsync_synth}), exhibiting the paper's hierarchy at sizes where
    everything is checkable. *)

type spec = {
  name : string;
  universe : Wb_graph.Graph.t list;
  conflict : Wb_graph.Graph.t -> Wb_graph.Graph.t -> bool;
      (** [conflict g h]: no single output is correct for both. *)
}

val bool_spec : name:string -> universe:Wb_graph.Graph.t list -> (Wb_graph.Graph.t -> bool) -> spec

val exists_protocol : n:int -> spec -> alphabet:int -> bool
(** Is there a message function with [alphabet] letters? *)

val min_alphabet : n:int -> spec -> max:int -> int option
(** Smallest feasible alphabet size in [\[1, max\]]. *)

val message_function : n:int -> spec -> alphabet:int -> (Views.t -> int) option
(** A witness, when one exists. *)
