lib/synth/views.mli: Wb_graph
