lib/synth/simasync_synth.mli: Views Wb_graph
