lib/synth/simsync_synth.ml: Array Hashtbl List Simasync_synth Views Wb_sat
