lib/synth/simasync_synth.ml: Array Hashtbl List Views Wb_graph Wb_sat
