lib/synth/simsync_synth.mli: Simasync_synth
