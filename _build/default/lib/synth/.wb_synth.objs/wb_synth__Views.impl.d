lib/synth/views.ml: Array Fun List Wb_graph
