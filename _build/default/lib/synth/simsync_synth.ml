module Solver = Wb_sat.Solver

(* Boards are sequences of (author, letter); encoded as int lists
   (author * alphabet + letter), most recent first, and interned. *)

type interner = {
  table : (int list, int) Hashtbl.t;
  mutable next : int;
  mutable clauses : int list list;
}

let fresh_interner () = { table = Hashtbl.create 1024; next = 0; clauses = [] }

let fresh_var it =
  it.next <- it.next + 1;
  it.next

let add it c = it.clauses <- c :: it.clauses

let rec boards ~n ~alphabet used prefix =
  (* All extensions of [prefix] (a reversed board); returns all boards
     including the prefix itself. *)
  prefix
  :: List.concat
       (List.init n (fun a ->
            if used land (1 lsl a) <> 0 then []
            else
              List.concat
                (List.init alphabet (fun l ->
                     boards ~n ~alphabet (used lor (1 lsl a)) (((a * alphabet) + l) :: prefix)))))

let problem_size ~n ~alphabet = List.length (boards ~n ~alphabet 0 [])

let exists_protocol ~n (spec : Simasync_synth.spec) ~alphabet =
  let it = fresh_interner () in
  (* msg vars, keyed by (view index, board), one-hot lazily. *)
  let msg_table = Hashtbl.create 1024 in
  let msg_var view board letter =
    let key = (Views.index ~n view, board) in
    match Hashtbl.find_opt msg_table key with
    | Some vars -> vars.(letter)
    | None ->
      let vars = Array.init alphabet (fun _ -> fresh_var it) in
      Hashtbl.replace msg_table key vars;
      add it (Array.to_list vars);
      for b = 0 to alphabet - 1 do
        for b' = b + 1 to alphabet - 1 do
          add it [ -vars.(b); -vars.(b') ]
        done
      done;
      vars.(letter)
  in
  let universe = Array.of_list spec.universe in
  let vectors = Array.map Views.vector universe in
  (* reach vars per (graph index, board). *)
  let reach_table = Hashtbl.create 4096 in
  let reach gi board =
    match Hashtbl.find_opt reach_table (gi, board) with
    | Some v -> v
    | None ->
      let v = fresh_var it in
      Hashtbl.replace reach_table (gi, board) v;
      v
  in
  (* Chain reachability over every board prefix. *)
  let all_boards = boards ~n ~alphabet 0 [] in
  let complete, partial = List.partition (fun b -> List.length b = n) all_boards in
  for gi = 0 to Array.length universe - 1 do
    add it [ reach gi [] ];
    List.iter
      (fun board ->
        let used = List.fold_left (fun acc e -> acc lor (1 lsl (e / alphabet))) 0 board in
        for a = 0 to n - 1 do
          if used land (1 lsl a) = 0 then
            for l = 0 to alphabet - 1 do
              let next = ((a * alphabet) + l) :: board in
              add it
                [ -reach gi board; -msg_var vectors.(gi).(a) board l; reach gi next ]
            done
        done)
      partial
  done;
  (* Conflicting pairs must not share a complete sequence. *)
  for i = 0 to Array.length universe - 1 do
    for j = i + 1 to Array.length universe - 1 do
      if spec.conflict universe.(i) universe.(j) then
        List.iter (fun s -> add it [ -reach i s; -reach j s ]) complete
    done
  done;
  let solver = Solver.create it.next in
  List.iter (Solver.add_clause solver) it.clauses;
  Solver.solve solver = Solver.Sat

let min_alphabet ~n spec ~max =
  let rec go b =
    if b > max then None else if exists_protocol ~n spec ~alphabet:b then Some b else go (b + 1)
  in
  go 1
