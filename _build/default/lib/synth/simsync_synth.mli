(** Exhaustive SIMSYNC protocol existence at tiny [n], by SAT.

    A SIMSYNC protocol lets a pending node recompute its message from the
    current whiteboard, so a protocol is a function
    [msg : view * board -> letter]; the adversary schedules authors in any
    order.  A problem is solvable iff some such function prevents any two
    conflicting instances from ever realising the {e same} complete board
    sequence.

    Encoding: reachability variables [reach(G, board)] chained over board
    prefixes ([reach(G, b·(a,l)) <- reach(G, b) ∧ msg(view_a(G), b) = l]),
    and a binary clause [¬reach(G, s) ∨ ¬reach(H, s)] per conflicting pair
    and complete sequence [s].  Exponential in [n] — intended for
    [n <= 4] and alphabets of 2-3 letters, where it provides ground truth
    unobtainable any other way. *)

val exists_protocol : n:int -> Simasync_synth.spec -> alphabet:int -> bool
val min_alphabet : n:int -> Simasync_synth.spec -> max:int -> int option

val problem_size : n:int -> alphabet:int -> int
(** Number of board sequences the encoding enumerates — a cost estimate to
    check before launching. *)
