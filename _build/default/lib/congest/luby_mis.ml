(* Each phase takes three rounds: (1) broadcast priorities, (2) local maxima
   announce "joined", (3) joined nodes' neighbours announce "out".  States
   carry the shared seed so draws are reproducible per (seed, node, phase). *)

type phase_step = Draw | Hear_priorities | Hear_joins

module Algo = struct
  type status = Live | In_mis | Out

  type state = {
    seed : int;
    n : int;
    id : int;
    neighbors : int array;
    status : status;
    phase : int;
    step : phase_step;
    my_priority : int;
    live_neighbors : int list;
  }

  type message =
    | Priority of int
    | Joined
    | Knocked_out

  let size_bits = function
    | Priority p -> 2 + Wb_support.Bitbuf.width_of (p + 1)
    | Joined | Knocked_out -> 2

  let init ~n ~id ~neighbors =
    { seed = 0;
      n;
      id;
      neighbors;
      status = Live;
      phase = 0;
      step = Draw;
      my_priority = 0;
      live_neighbors = Array.to_list neighbors }

  let priority ~seed ~id ~phase ~n =
    let g = Wb_support.Prng.create ((((seed * 7919) + phase) * 104729) lxor id) in
    Wb_support.Prng.int g (n * n * n * 8)

  let broadcast state m = List.map (fun nb -> (nb, m)) state.live_neighbors

  let step ~round:_ ~id state ~inbox =
    match state.status with
    | In_mis | Out -> (state, [])
    | Live -> begin
      match state.step with
      | Draw ->
        let p = priority ~seed:state.seed ~id ~phase:state.phase ~n:state.n in
        let state = { state with my_priority = p; step = Hear_priorities } in
        (state, broadcast state (Priority p))
      | Hear_priorities ->
        let higher =
          List.exists
            (fun (sender, m) ->
              match m with
              | Priority p -> (p, sender) > (state.my_priority, id)
              | Joined | Knocked_out -> false)
            inbox
        in
        if higher then ({ state with step = Hear_joins }, [])
        else begin
          (* Local maximum: join and notify. *)
          let state = { state with status = In_mis } in
          (state, broadcast state Joined)
        end
      | Hear_joins ->
        let neighbor_joined =
          List.exists (fun (_, m) -> match m with Joined -> true | Priority _ | Knocked_out -> false) inbox
        in
        if neighbor_joined then ({ state with status = Out }, broadcast state Knocked_out)
        else begin
          (* Drop knocked-out and joined neighbours from future phases. *)
          let gone =
            List.filter_map
              (fun (sender, m) ->
                match m with Joined | Knocked_out -> Some sender | Priority _ -> None)
              inbox
          in
          let live = List.filter (fun nb -> not (List.mem nb gone)) state.live_neighbors in
          ({ state with live_neighbors = live; phase = state.phase + 1; step = Draw }, [])
        end
    end

  let halted state = state.status <> Live
end

module Runner = Congest.Run (Algo)

type result = { in_mis : bool array; stats : Congest.stats }

let run ~seed g =
  (* thread the seed through init via a functor-free trick: patch states
     before the first step by rebuilding them. *)
  let module Seeded = struct
    include Algo

    let init ~n ~id ~neighbors = { (Algo.init ~n ~id ~neighbors) with seed }
  end in
  let module R = Congest.Run (Seeded) in
  let states, stats = R.execute ~max_rounds:(64 * (4 + Wb_support.Bitbuf.width_of (Wb_graph.Graph.n g + 1))) g in
  { in_mis = Array.map (fun (s : Algo.state) -> s.status = Algo.In_mis) states; stats }
