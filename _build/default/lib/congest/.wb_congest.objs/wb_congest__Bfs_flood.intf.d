lib/congest/bfs_flood.mli: Congest Wb_graph
