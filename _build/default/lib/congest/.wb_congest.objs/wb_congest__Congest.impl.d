lib/congest/congest.ml: Array List Wb_graph
