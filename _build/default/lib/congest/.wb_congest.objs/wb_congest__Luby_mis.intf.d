lib/congest/luby_mis.mli: Congest Wb_graph
