lib/congest/bfs_flood.ml: Array Congest List Wb_support
