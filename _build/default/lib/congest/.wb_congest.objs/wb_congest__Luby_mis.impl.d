lib/congest/luby_mis.ml: Array Congest List Wb_graph Wb_support
