lib/congest/congest.mli: Wb_graph
