module Algo = struct
  type state = {
    n : int;
    neighbors : int array;
    dist : int;
    parent : int;
    announced : bool;
    idle_rounds : int;
  }

  type message = int (* the sender's distance from the root *)

  let size_bits m = Wb_support.Bitbuf.width_of (m + 1)

  let init ~n ~id ~neighbors =
    { n; neighbors; dist = (if id = 0 then 0 else -1); parent = -1; announced = false; idle_rounds = 0 }

  let step ~round:_ ~id:_ state ~inbox =
    let state =
      if state.dist >= 0 then state
      else begin
        match List.sort (fun (_, a) (_, b) -> compare a b) inbox with
        | (sender, d) :: _ -> { state with dist = d + 1; parent = sender }
        | [] -> state
      end
    in
    if state.dist >= 0 && not state.announced then
      ( { state with announced = true; idle_rounds = 0 },
        Array.to_list (Array.map (fun nb -> (nb, state.dist)) state.neighbors) )
    else ({ state with idle_rounds = state.idle_rounds + 1 }, [])

  let halted state = state.idle_rounds > state.n

  (* Exposed through the runner's final states. *)
end

module Runner = Congest.Run (Algo)

type result = { parent : int array; dist : int array; stats : Congest.stats }

let run g =
  let states, stats = Runner.execute g in
  { parent = Array.map (fun (s : Algo.state) -> s.parent) states;
    dist = Array.map (fun (s : Algo.state) -> s.dist) states;
    stats }
