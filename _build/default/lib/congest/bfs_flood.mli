(** Textbook CONGEST BFS from node 0 by flooding: a node that first learns
    a distance announces [dist + 1] to its neighbours ([O(log n)]-bit
    messages, [O(diameter)] rounds).  Nodes run a quiescence countdown of
    [n] rounds so the run self-terminates without a termination-detection
    subprotocol (costing rounds, not messages). *)

type result = { parent : int array; dist : int array; stats : Congest.stats }

val run : Wb_graph.Graph.t -> result
(** Requires a connected input (unreached nodes keep [dist = -1] but also
    halt). *)
