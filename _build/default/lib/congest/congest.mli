(** A synchronous CONGEST-model simulator — the classical point-to-point
    baseline the paper positions the whiteboard models against (links are
    channels; each round every node may send one bounded message {e per
    incident edge}).

    The bench compares total communication (bits) of CONGEST BFS against
    the whiteboard SYNC BFS protocol, quantifying the motivation: when
    links are only a relation, a whiteboard write is one message per node
    ever, whereas CONGEST pays per edge per round. *)

module type ALGORITHM = sig
  type state
  type message

  val size_bits : message -> int

  val init : n:int -> id:int -> neighbors:int array -> state

  val step : round:int -> id:int -> state -> inbox:(int * message) list -> state * (int * message) list
  (** [inbox] holds (sender, message); the outbox pairs are
      (neighbour, message) — at most one per incident edge.  Sending to a
      non-neighbour raises. *)

  val halted : state -> bool
end

type stats = { rounds : int; messages : int; total_bits : int }

module Run (A : ALGORITHM) : sig
  val execute : ?max_rounds:int -> Wb_graph.Graph.t -> A.state array * stats
  (** Runs until every node halts (or [max_rounds], default [4n + 16],
      then raises [Failure]). *)
end
