module type ALGORITHM = sig
  type state
  type message

  val size_bits : message -> int
  val init : n:int -> id:int -> neighbors:int array -> state
  val step : round:int -> id:int -> state -> inbox:(int * message) list -> state * (int * message) list
  val halted : state -> bool
end

type stats = { rounds : int; messages : int; total_bits : int }

module Run (A : ALGORITHM) = struct
  let execute ?max_rounds g =
    let n = Wb_graph.Graph.n g in
    let max_rounds = match max_rounds with Some r -> r | None -> (4 * n) + 16 in
    let states = Array.init n (fun v -> A.init ~n ~id:v ~neighbors:(Wb_graph.Graph.neighbors g v)) in
    let inboxes = Array.make n [] in
    let messages = ref 0 and total_bits = ref 0 in
    let round = ref 0 in
    let all_halted () = Array.for_all A.halted states in
    while (not (all_halted ())) && !round < max_rounds do
      incr round;
      let outboxes = Array.make n [] in
      for v = 0 to n - 1 do
        let state, out = A.step ~round:!round ~id:v states.(v) ~inbox:inboxes.(v) in
        states.(v) <- state;
        List.iter
          (fun (target, _) ->
            if not (Wb_graph.Graph.mem_edge g v target) then
              invalid_arg "Congest: sending along a non-edge")
          out;
        outboxes.(v) <- out
      done;
      Array.fill inboxes 0 n [];
      Array.iteri
        (fun v out ->
          List.iter
            (fun (target, m) ->
              incr messages;
              total_bits := !total_bits + A.size_bits m;
              inboxes.(target) <- (v, m) :: inboxes.(target))
            out)
        outboxes
    done;
    if not (all_halted ()) then failwith "Congest: round limit exceeded";
    (states, { rounds = !round; messages = !messages; total_bits = !total_bits })
end
