(** Luby's randomized maximal independent set in CONGEST — the classical
    message-passing contrast to the whiteboard's one-shot SIMSYNC greedy
    (Theorem 5).  Each phase: every live node draws a random priority,
    local maxima join the MIS, and joined nodes knock their neighbours out;
    O(log n) phases w.h.p., O(log n)-bit messages per edge per round. *)

type result = { in_mis : bool array; stats : Congest.stats }

val run : seed:int -> Wb_graph.Graph.t -> result
