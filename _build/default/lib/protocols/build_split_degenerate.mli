(** The closing remark of Section 3: BUILD extends to graphs admitting an
    elimination order where every node has degree at most [k] {e or} at
    least [remaining - k - 1] in the graph induced by the nodes removed
    after it (complete graphs and complements of k-degenerate graphs live
    here; see {!Wb_graph.Algo.split_degeneracy}).

    Every node writes both its neighbourhood power sums {e and} its
    non-neighbourhood power sums ([2 k^2 log n + O(log n)] bits, still
    O(log n) for fixed k); the output function prunes either a sparse node
    (decode its neighbours) or a dense node (decode its non-neighbours; all
    other remaining nodes are neighbours), updating both sum families.
    [Reject] outside the class. *)

val protocol : k:int -> Wb_model.Protocol.t
