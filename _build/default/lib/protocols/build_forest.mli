(** Section 3.1: BUILD for forests (degeneracy 1) in SIMASYNC[log n].

    Every node simultaneously writes the triple
    [(ID, degree, sum of neighbour IDs)] — under 4 log n bits.  The output
    function prunes leaves: a degree-1 entry's sum {e is} its unique
    neighbour's identifier, so edges peel off one by one.  The protocol is
    robust: on inputs that are not forests it answers [Reject]. *)

val protocol : Wb_model.Protocol.t
