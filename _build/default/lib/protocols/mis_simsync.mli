(** Theorem 5: rooted maximal independent set in SIMSYNC[log n].

    The greedy protocol: when the adversary schedules node [v], the message
    [v] has been recomputing says "in" exactly when [v] is the root, or when
    [v] is not adjacent to the root and no neighbour of [v] has said "in"
    yet.  Whatever order the adversary picks, the "in" nodes form a maximal
    independent set containing the root.

    The root's index is a protocol parameter (the problem is "rooted": the
    desired output is {e some} MIS containing the designated node). *)

val protocol : root:int -> Wb_model.Protocol.t
