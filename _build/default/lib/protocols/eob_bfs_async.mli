(** Theorem 7: EOB-BFS in ASYNC[log n].

    On even-odd-bipartite inputs the protocol activates nodes one BFS layer
    at a time (the whiteboard's edge counts certify layer completion, which
    is what defeats asynchrony) and outputs a BFS forest rooted at each
    component's minimum identifier.  Any node that sees a same-parity
    neighbour — and any node that sees such a report on the board — writes
    an "invalid" marker instead, so on non-EOB inputs every execution still
    terminates and the output is [Reject]. *)

val protocol : Wb_model.Protocol.t
