(** Shared machinery of the layer-by-layer BFS protocols (Theorems 7 and 10,
    Corollary 4).

    All three protocols activate nodes one BFS layer at a time, using the
    whiteboard itself as the synchronisation certificate: a node of layer
    [l] becomes active only when the edge-counting identity proving "layer
    [l - 1] has completely written" holds.  They differ in two switches:

    - [with_d0]: general graphs need the within-layer degree [d0] (composed
      at {e write} time, hence SYNC); bipartite runs drop it;
    - [check_parity]: EOB-BFS rejects when a node sees a same-parity
      neighbour (paper identifiers), which also rescues termination on
      non-even-odd-bipartite inputs.

    Layer sums are tracked {e per component} (components are delimited on
    the board by ROOT messages); the paper's prose sums over layers
    globally, which deadlocks after the first isolated-plus-nonisolated
    component pattern — see DESIGN.md, substitutions.

    Messages: one kind bit, then [(ID, layer, parent, d-1, \[d0,\] d+1)]
    with [parent = 0] meaning ROOT, or just [ID] for "invalid graph"
    markers. *)

type variant = { with_d0 : bool; check_parity : bool }

type entry =
  | Invalid of int  (** author's paper id. *)
  | Node of { id : int; layer : int; parent : int; dm : int; d0 : int; dp : int }

val write_entry : variant -> entry -> Wb_support.Bitbuf.Writer.t
val parse_message : variant -> Wb_model.Message.t -> entry
val message_bound : variant -> n:int -> int

(** Incrementally maintained digest of the board (memoised on the board's
    identity, so repeated queries per round stay cheap). *)
module Analysis : sig
  type t

  val get : variant -> Wb_model.Board.t -> t
  val invalid_seen : t -> bool
  val layer_of : t -> paper_id:int -> int option
  val written : t -> int -> bool
  (** By node index. *)

  val complete : t -> int -> bool
  (** Layer [k] of the current component has fully written (edge-count
      certificate); [true] for [k <= 0]. *)

  val no_forward : t -> int -> bool
  (** No edges leave layer [k] of the current component. *)

  val last_normal : t -> (int * int) option
  (** [(paper id, layer)] of the most recent non-invalid message. *)

  val min_unwritten : t -> int option
  (** Smallest node index that has not written. *)

  val entries : t -> entry list
  (** In write order. *)
end

val locally_invalid : Wb_model.View.t -> bool
(** Some neighbour shares the node's identifier parity. *)

val wants_to_activate : variant -> Wb_model.View.t -> Wb_model.Board.t -> bool
val compose_entry : variant -> Wb_model.View.t -> Wb_model.Board.t -> entry
val output_forest : variant -> n:int -> Wb_model.Board.t -> Wb_model.Answer.t
val count_roots : variant -> n:int -> Wb_model.Board.t -> int option
(** Number of ROOT messages on a fully-written, invalid-free board; [None]
    if the board is malformed or contains invalid markers. *)
