module Nat = Wb_bignum.Nat

type sums = Nat.t array

let power_sums ~k ids =
  if k < 1 then invalid_arg "Decode.power_sums: k >= 1";
  let b = Array.make k Nat.zero in
  List.iter
    (fun id ->
      if id < 1 then invalid_arg "Decode.power_sums: identifiers are positive";
      for p = 1 to k do
        b.(p - 1) <- Nat.add b.(p - 1) (Nat.pow_int id p)
      done)
    ids;
  b

let subtract_member b j =
  Array.mapi
    (fun i s ->
      let jp = Nat.pow_int j (i + 1) in
      if Nat.compare jp s > 0 then invalid_arg "Decode.subtract_member: inconsistent sums"
      else Nat.sub s jp)
    b

let is_zero b = Array.for_all Nat.is_zero b

(* Descending search on the largest member m of the set.  The candidate
   window for m is the intersection, over every power p, of
   [ceil((b_p / d)^(1/p)), floor(b_p^(1/p))] (m is the largest of d members,
   so m^p <= b_p <= d * m^p), sharpened by the exact first-power window
   m ∈ [ceil((b_1 + T) / d), b_1 - T] with T = d(d-1)/2 (members are
   distinct positives).  Bounds are found by binary search over a table of
   precomputed powers, which makes each search level O(k log n) plus the
   (tiny, thanks to Wright uniqueness) residual enumeration. *)

module Context = struct
  type t = { n : int; k : int; pows : Nat.t array array (* pows.(j).(p-1) = j^p *) }

  let create ~n ~k =
    if n < 0 || k < 1 then invalid_arg "Decode.Context.create";
    let pows =
      Array.init (n + 1) (fun j ->
          let row = Array.make k Nat.one in
          let base = Nat.of_int j in
          row.(0) <- base;
          for p = 2 to k do
            row.(p - 1) <- Nat.mul row.(p - 2) base
          done;
          row)
    in
    { n; k; pows }

  (* Largest m in [0, limit] with m^p <= bound (monotone in m). *)
  let max_root ctx ~p ~limit bound =
    let rec go lo hi =
      (* invariant: lo^p <= bound, (hi+1)^p > bound candidates in [lo,hi] *)
      if lo >= hi then lo
      else begin
        let mid = (lo + hi + 1) / 2 in
        if Nat.compare ctx.pows.(mid).(p - 1) bound <= 0 then go mid hi else go lo (mid - 1)
      end
    in
    if Nat.compare ctx.pows.(0).(p - 1) bound > 0 then -1 else go 0 limit

  (* Smallest m in [0, limit] with d * m^p >= bound; limit+1 if none. *)
  let min_root ctx ~p ~limit ~d bound =
    let d_nat = Nat.of_int d in
    let ok m = Nat.compare (Nat.mul d_nat ctx.pows.(m).(p - 1)) bound >= 0 in
    let rec go lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if ok mid then go lo mid else go (mid + 1) hi
      end
    in
    if not (ok limit) then limit + 1 else go 0 limit

  (* Necessary conditions on intermediate sums, cheap enough to evaluate at
     every node of the search tree: Cauchy-Schwarz gives
     b_p^2 <= b_{p-1} * b_{p+1} (positive members), and the power-mean
     inequality gives b_1^2 <= d * b_2.  Wrong branches violate these almost
     immediately, which keeps the residual enumeration tiny. *)
  let consistent ~k ~d b =
    let ok = ref true in
    if d > 0 then begin
      if k >= 2 && Nat.compare (Nat.mul b.(0) b.(0)) (Nat.mul (Nat.of_int d) b.(1)) > 0 then
        ok := false;
      for p = 2 to k - 1 do
        if !ok && Nat.compare (Nat.mul b.(p - 1) b.(p - 1)) (Nat.mul b.(p - 2) b.(p)) > 0 then
          ok := false
      done
    end;
    !ok

  let decode ctx ~d b =
    let k = ctx.k in
    if Array.length b <> k then invalid_arg "Decode.Context.decode: wrong k";
    if d < 0 || d > k then invalid_arg "Decode.Context.decode: need d <= k";
    let rec solve d b hi =
      if d = 0 then if Array.for_all Nat.is_zero b then Some [] else None
      else if not (consistent ~k ~d b) then None
      else begin
        match Nat.to_int_opt b.(0) with
        | None -> None (* first power sum exceeds d * n: impossible *)
        | Some b1 ->
          let tail = d * (d - 1) / 2 in
          let m_hi = ref (min hi (b1 - tail)) in
          let m_lo = ref (max d ((b1 + tail + d - 1) / d)) in
          for p = 1 to k do
            m_hi := min !m_hi (max_root ctx ~p ~limit:ctx.n b.(p - 1));
            m_lo := max !m_lo (min_root ctx ~p ~limit:ctx.n ~d b.(p - 1))
          done;
          let rec try_m m =
            if m < !m_lo then None
            else begin
              let feasible = ref true in
              let remaining =
                Array.mapi
                  (fun i s ->
                    if Nat.compare ctx.pows.(m).(i) s > 0 then begin
                      feasible := false;
                      s
                    end
                    else Nat.sub s ctx.pows.(m).(i))
                  b
              in
              if not !feasible then try_m (m - 1)
              else begin
                match solve (d - 1) remaining (m - 1) with
                | Some smaller -> Some (smaller @ [ m ])
                | None -> try_m (m - 1)
              end
            end
          in
          try_m !m_hi
      end
    in
    solve d (Array.map Fun.id b) ctx.n
end

let decode_backtracking ~n ~d b =
  let k = Array.length b in
  if k < 1 then invalid_arg "Decode.decode_backtracking: need k >= 1";
  Context.decode (Context.create ~n ~k) ~d b

module Table = struct
  type t = { n : int; k : int; entries : (string, int list) Hashtbl.t }

  let key ~d b = string_of_int d ^ "|" ^ String.concat "," (List.map Nat.to_string (Array.to_list b))

  let count_subsets n k =
    let total = ref 0 in
    let binom = ref 1 in
    for d = 0 to k do
      total := !total + !binom;
      binom := !binom * (n - d) / (d + 1)
    done;
    !total

  let build ~n ~k =
    if k < 1 || n < 1 then invalid_arg "Decode.Table.build";
    if count_subsets n k > 10_000_000 then invalid_arg "Decode.Table.build: table too large";
    let entries = Hashtbl.create 1024 in
    (* Enumerate subsets of {1..n} of size <= k, maintaining sums
       incrementally. *)
    let b = Array.make k Nat.zero in
    let members = ref [] in
    let rec go d next =
      Hashtbl.replace entries (key ~d b) (List.rev !members);
      if d < k then
        for j = next to n do
          for p = 1 to k do
            b.(p - 1) <- Nat.add b.(p - 1) (Nat.pow_int j p)
          done;
          members := j :: !members;
          go (d + 1) (j + 1);
          members := List.tl !members;
          for p = 1 to k do
            b.(p - 1) <- Nat.sub b.(p - 1) (Nat.pow_int j p)
          done
        done
    in
    go 0 1;
    { n; k; entries }

  let decode t ~d b =
    if Array.length b <> t.k then invalid_arg "Decode.Table.decode: wrong k";
    Hashtbl.find_opt t.entries (key ~d b)
end

type strategy = Backtracking | Lookup of Table.t

let decode strategy ~n ~d b =
  match strategy with
  | Backtracking -> decode_backtracking ~n ~d b
  | Lookup t -> Table.decode t ~d b
