(** Shared wire helpers for protocol payloads.

    Everything a protocol writes goes through {!Wb_support.Bitbuf}; this
    module adds the two encodings the protocols share: identifiers (positive
    naturals, self-delimiting) and arbitrary-precision naturals (for the
    power sums of Section 3, which exceed the native word). *)

val write_id : Wb_support.Bitbuf.Writer.t -> int -> unit
(** Paper identifier, [>= 1]. *)

val read_id : Wb_support.Bitbuf.Reader.t -> int

val write_int : Wb_support.Bitbuf.Writer.t -> int -> unit
(** Natural number ([>= 0]), self-delimiting. *)

val read_int : Wb_support.Bitbuf.Reader.t -> int

val write_signed : Wb_support.Bitbuf.Writer.t -> int -> unit
(** Any native int, zig-zag coded. *)

val read_signed : Wb_support.Bitbuf.Reader.t -> int

val write_big : Wb_support.Bitbuf.Writer.t -> Wb_bignum.Nat.t -> unit
val read_big : Wb_support.Bitbuf.Reader.t -> Wb_bignum.Nat.t

val write_payload : Wb_support.Bitbuf.Writer.t -> bool array -> unit
(** Length-prefixed embedding of a whole message payload — used by the
    reduction transformers, whose messages carry simulated inner-protocol
    messages verbatim. *)

val read_payload : Wb_support.Bitbuf.Reader.t -> bool array
val payload_bits : int -> int
(** Upper bound on the embedded size of a payload of [b] bits. *)

val id_bits : int -> int
(** Upper bound on the encoded size of an identifier [<= n]. *)

val int_bits : int -> int
(** Upper bound on the encoded size of a natural [<= v]. *)

val big_bits : Wb_bignum.Nat.t -> int
(** Upper bound on the encoded size of a natural [<= v]. *)
