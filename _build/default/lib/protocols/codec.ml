module W = Wb_support.Bitbuf.Writer
module R = Wb_support.Bitbuf.Reader
module Nat = Wb_bignum.Nat

let write_id w id =
  if id < 1 then invalid_arg "Codec.write_id: identifiers are positive";
  W.delta w id

let read_id = R.delta

let write_int = W.nat

let read_int = R.nat

let write_big w v =
  let len = Nat.bit_length v in
  W.nat w len;
  for i = len - 1 downto 0 do
    W.bit w (Nat.nth_bit v i)
  done

let read_big r =
  let len = R.nat r in
  let acc = ref Nat.zero in
  for i = len - 1 downto 0 do
    let shifted = Nat.shift_left !acc 1 in
    acc := (if R.bit r then Nat.add shifted Nat.one else shifted);
    ignore i
  done;
  !acc

let write_signed w v = W.nat w (if v >= 0 then 2 * v else (-2 * v) - 1)

let read_signed r =
  let z = R.nat r in
  if z land 1 = 0 then z / 2 else -((z + 1) / 2)

let write_payload w bits =
  W.nat w (Array.length bits);
  Array.iter (W.bit w) bits

let read_payload r =
  let len = R.nat r in
  Array.init len (fun _ -> R.bit r)

(* Elias delta of v costs |v| + 2|‌|v|| - 1 bits with |x| = width of x. *)
let delta_bits v =
  let width = Wb_support.Bitbuf.width_of v in
  let width_width = Wb_support.Bitbuf.width_of width in
  width + (2 * width_width) - 1

let id_bits n = delta_bits (max n 1)

let int_bits v = delta_bits (v + 1)

let big_bits v =
  let len = Nat.bit_length v in
  int_bits len + len

let payload_bits b = int_bits b + b
