module P = Wb_model

type promise =
  | Any_graph
  | Degeneracy_at_most of int
  | Split_degeneracy_at_most of int
  | Forest
  | Even_odd_bipartite
  | Bipartite
  | Regular_two_half

type entry = {
  key : string;
  protocol : P.Protocol.t;
  problem : int -> P.Problems.t;
  promise : promise;
  randomized : bool;
}

let plain key protocol problem promise =
  { key; protocol; problem = (fun _ -> problem); promise; randomized = false }

let all () =
  [ plain "build-forest" Build_forest.protocol P.Problems.Build Forest;
    plain "build-2-degenerate" (Build_degenerate.protocol ~k:2 ~decoder:`Backtracking) P.Problems.Build
      (Degeneracy_at_most 2);
    plain "build-3-degenerate" (Build_degenerate.protocol ~k:3 ~decoder:`Backtracking) P.Problems.Build
      (Degeneracy_at_most 3);
    plain "build-5-degenerate" (Build_degenerate.protocol ~k:5 ~decoder:`Backtracking) P.Problems.Build
      (Degeneracy_at_most 5);
    plain "build-naive" Build_naive.protocol P.Problems.Build Any_graph;
    plain "mis" (Mis_simsync.protocol ~root:0) (P.Problems.Rooted_mis 0) Any_graph;
    plain "two-cliques" Two_cliques_simsync.protocol P.Problems.Two_cliques Regular_two_half;
    { key = "two-cliques-randomized";
      protocol = Two_cliques_randomized.protocol ~seed:42 ~bits:24;
      problem = (fun _ -> P.Problems.Two_cliques);
      promise = Regular_two_half;
      randomized = true };
    plain "eob-bfs" Eob_bfs_async.protocol P.Problems.Eob_bfs Any_graph;
    plain "bfs-bipartite" Bfs_bipartite_async.protocol P.Problems.Bfs Bipartite;
    plain "bfs" Bfs_sync.protocol P.Problems.Bfs Any_graph;
    plain "connectivity" Connectivity_sync.protocol P.Problems.Connectivity Any_graph;
    (let cutoff n = int_of_float (sqrt (float_of_int n)) in
     { key = "subgraph-sqrt";
       protocol = Subgraph_simasync.protocol ~cutoff;
       problem = (fun n -> P.Problems.Subgraph (cutoff n));
       promise = Any_graph;
       randomized = false });
    plain "triangle-3-degenerate" (Triangle_degenerate.protocol ~k:3) P.Problems.Triangle
      (Degeneracy_at_most 3);
    plain "square-3-degenerate" (Via_build.protocol ~k:3 P.Problems.Square) P.Problems.Square
      (Degeneracy_at_most 3);
    plain "diameter3-3-degenerate"
      (Via_build.protocol ~k:3 (P.Problems.Diameter_at_most 3))
      (P.Problems.Diameter_at_most 3) (Degeneracy_at_most 3);
    plain "build-split-2-degenerate" (Build_split_degenerate.protocol ~k:2) P.Problems.Build
      (Split_degeneracy_at_most 2);
    plain "spanning-forest" Spanning_forest_sync.protocol P.Problems.Spanning_forest Any_graph;
    { key = "connectivity-sketch";
      protocol = Sketch_connectivity.connectivity ~seed:271828;
      problem = (fun _ -> P.Problems.Connectivity);
      promise = Any_graph;
      randomized = true };
    { key = "spanning-forest-sketch";
      protocol = Sketch_connectivity.spanning_forest ~seed:271828;
      problem = (fun _ -> P.Problems.Spanning_forest);
      promise = Any_graph;
      randomized = true } ]

let find key = List.find_opt (fun e -> e.key = key) (all ())

let satisfies_promise promise g =
  match promise with
  | Any_graph -> true
  | Degeneracy_at_most k -> fst (Wb_graph.Algo.degeneracy g) <= k
  | Split_degeneracy_at_most k -> Wb_graph.Algo.split_degeneracy g <= k
  | Forest -> fst (Wb_graph.Algo.degeneracy g) <= 1
  | Even_odd_bipartite -> Wb_graph.Algo.is_even_odd_bipartite g
  | Bipartite -> Wb_graph.Algo.bipartition g <> None
  | Regular_two_half ->
    let n = Wb_graph.Graph.n g in
    n > 0 && n mod 2 = 0 && Wb_graph.Graph.is_regular g = Some ((n / 2) - 1)
