(** Theorem 9 (upper bound): SUBGRAPH_f in SIMASYNC[f(n)].

    Every node writes the first [f n] bits of its adjacency-matrix row; the
    output keeps the edges among nodes [v_1 .. v_{f(n)}].  Combined with the
    counting argument of {!Wb_reductions.Subgraph_bound} this makes message
    size a resource orthogonal to synchronisation power: SUBGRAPH_f is
    doable with simultaneous frozen messages of [f(n)] bits but impossible
    for SYNC with [o(f(n))] bits. *)

val protocol : cutoff:(int -> int) -> Wb_model.Protocol.t
(** [cutoff n] is [f n], clamped into [\[0, n\]]. *)
