(** Corollary 4: BFS forests for {e arbitrary} bipartite graphs in
    ASYNC[log n] — the Theorem 7 protocol without the parity check (no
    bipartition knowledge needed, because bipartite graphs have no
    within-layer edges, so the d0-free accounting is already exact).

    On non-bipartite inputs executions may deadlock (the corrupted final
    configurations of Section 6); tests demonstrate this is real. *)

val protocol : Wb_model.Protocol.t
