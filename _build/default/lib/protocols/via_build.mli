(** "Any question can be easily answered" (introduction): once BUILD works
    on a class, every graph problem on that class is solved by reconstructing
    and computing locally.  [protocol ~k problem] runs the Section 3 BUILD
    protocol for degeneracy [<= k] and answers [problem] from the rebuilt
    graph; [Reject] outside the promise class.  This realises the positive
    Table 2 entries for TRIANGLE-like problems on restricted classes
    (SQUARE, DIAMETER, connectivity, ... ) inside SIMASYNC. *)

val protocol : k:int -> Wb_model.Problems.t -> Wb_model.Protocol.t
