(** Open Problem 4 (constructive side): a randomized SIMASYNC[log n]
    protocol for 2-CLIQUES.

    With shared randomness (a seed known to all nodes — the standard public
    coin assumption; see DESIGN.md substitutions), every node writes a
    [bits]-bit fingerprint of its {e closed} neighbourhood: the sum of
    pseudo-random words [r_w], [w ∈ N\[v\] ], modulo [2^bits].  For an
    (n/2-1)-regular graph: it is a union of two cliques iff the closed
    neighbourhoods take exactly two distinct values, each on exactly half
    the nodes.  Fingerprint collisions (probability [O(n^2 / 2^bits)]) are
    the only error source, and the error is one-sided per class-merge. *)

val protocol : seed:int -> bits:int -> Wb_model.Protocol.t
