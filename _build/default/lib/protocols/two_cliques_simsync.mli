(** Section 5.1: 2-CLIQUES in SIMSYNC[log n].

    Promise: the input is an (n/2 - 1)-regular graph on n nodes (n even);
    decide whether it is the disjoint union of two K_{n/2}.

    The paper's protocol: the first scheduled node labels itself 0; a node
    whose written neighbours are unanimously labelled [c] adopts [c]; a node
    with no written neighbour labels itself 1; mixed evidence writes "no".

    Output refinement (needed for soundness, implied by the paper's promise):
    the answer is {e yes} iff no "no" was written {e and} the two label
    classes have exactly n/2 nodes each.  Without the balance check a
    connected regular instance (e.g. K_{n/2,n/2} minus a perfect matching)
    can end up unanimously labelled 0 under an adversarial schedule. *)

val protocol : Wb_model.Protocol.t
