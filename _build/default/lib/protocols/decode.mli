(** Power-sum neighbourhood encoding (Section 3) and its two decoders.

    A node of degree [d <= k] encodes its neighbourhood [{j_1 < ... < j_d}]
    (paper identifiers, i.e. 1-based) as the vector of power sums
    [b_p = j_1^p + ... + j_d^p] for [p = 1..k].  Wright's theorem (the
    paper's Theorem 1) guarantees the [j_i] are recoverable: equal power
    sums up to [k] force equality of the multisets.

    Two decoders are provided and benchmarked against each other:
    - {!decode_backtracking}: descending search on the largest element with
      interval pruning — no precomputation, works at any [n];
    - {!Table}: the paper's Lemma 2 lookup table over all [<= k]-subsets of
      [{1..n}] — [O(n^k)] space, [O(k log n)]-ish query. *)

type sums = Wb_bignum.Nat.t array
(** [sums.(p-1)] is the p-th power sum, [p = 1 .. k]. *)

val power_sums : k:int -> int list -> sums
(** Of a list of distinct paper identifiers ([>= 1]). *)

val subtract_member : sums -> int -> sums
(** [subtract_member b j] removes identifier [j]'s contribution — the
    whiteboard-side "pruning" step of Algorithm 1.
    @raise Invalid_argument if some power sum would go negative (the caller
    treats that as an inconsistent board). *)

val is_zero : sums -> bool

val decode_backtracking : n:int -> d:int -> sums -> int list option
(** The unique sorted [d]-subset of [{1..n}] with the given power sums, or
    [None] when none exists.  Requires [d <= Array.length sums]. *)

module Context : sig
  type t
  (** Precomputed powers [j^p] for [j <= n], [p <= k]: amortises decoding
      across the [n] prune steps of one output-function run. *)

  val create : n:int -> k:int -> t
  val decode : t -> d:int -> sums -> int list option
end

module Table : sig
  type t

  val build : n:int -> k:int -> t
  (** Enumerates all subsets of [{1..n}] of size [<= k].
      @raise Invalid_argument when that count exceeds [10^7]. *)

  val decode : t -> d:int -> sums -> int list option
end

type strategy = Backtracking | Lookup of Table.t

val decode : strategy -> n:int -> d:int -> sums -> int list option
