(** Section 3.2-3.4: BUILD for graphs of degeneracy at most [k] in
    SIMASYNC[k^2 log n].

    Every node writes [(ID, degree, b_1 .. b_k)] where [b_p] is the p-th
    power sum of its neighbours' identifiers (Lemma 1: [O(k^2 log n)] bits).
    The output function repeatedly finds an entry of current degree [<= k],
    decodes its remaining neighbourhood (unique by Wright's theorem —
    Theorem 1 / Corollary 1), records the edges and prunes the node,
    updating its neighbours' sums (Algorithm 1).

    Robust: answers [Reject] exactly on graphs of degeneracy [> k] (and on
    inconsistent boards). *)

val protocol : k:int -> decoder:[ `Backtracking | `Table ] -> Wb_model.Protocol.t
(** [`Table] uses the Lemma 2 lookup table (built once per [(n, k)] and
    memoised); [`Backtracking] needs no precomputation. *)
