lib/protocols/build_forest.ml: Array Codec Queue Wb_graph Wb_model Wb_support
