lib/protocols/via_build.ml: Build_degenerate Printf Wb_model
