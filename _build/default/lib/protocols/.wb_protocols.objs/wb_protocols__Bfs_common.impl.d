lib/protocols/bfs_common.ml: Array Codec Hashtbl List Wb_model Wb_support
