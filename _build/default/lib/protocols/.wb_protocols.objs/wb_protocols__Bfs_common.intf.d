lib/protocols/bfs_common.mli: Wb_model Wb_support
