lib/protocols/bfs_bipartite_async.mli: Wb_model
