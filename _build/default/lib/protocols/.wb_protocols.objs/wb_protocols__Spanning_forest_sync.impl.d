lib/protocols/spanning_forest_sync.ml: Array Bfs_common List Wb_model
