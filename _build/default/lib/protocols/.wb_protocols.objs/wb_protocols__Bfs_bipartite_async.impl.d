lib/protocols/bfs_bipartite_async.ml: Bfs_common Wb_model
