lib/protocols/eob_bfs_async.ml: Bfs_common Wb_model
