lib/protocols/build_forest.mli: Wb_model
