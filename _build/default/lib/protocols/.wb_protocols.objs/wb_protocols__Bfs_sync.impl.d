lib/protocols/bfs_sync.ml: Bfs_common Wb_model
