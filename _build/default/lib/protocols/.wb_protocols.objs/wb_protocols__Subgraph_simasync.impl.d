lib/protocols/subgraph_simasync.ml: Array Codec List Wb_model Wb_support
