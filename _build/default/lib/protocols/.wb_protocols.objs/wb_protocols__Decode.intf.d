lib/protocols/decode.mli: Wb_bignum
