lib/protocols/triangle_degenerate.ml: Build_degenerate Printf Wb_graph Wb_model
