lib/protocols/two_cliques_simsync.ml: Codec List Wb_model Wb_support
