lib/protocols/sketch_connectivity.ml: Array Codec Hashtbl Int64 List Printf Wb_model Wb_support
