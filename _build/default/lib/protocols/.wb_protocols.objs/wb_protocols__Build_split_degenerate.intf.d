lib/protocols/build_split_degenerate.mli: Wb_model
