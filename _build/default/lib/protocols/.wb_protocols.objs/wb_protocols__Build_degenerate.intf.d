lib/protocols/build_degenerate.mli: Wb_model
