lib/protocols/decode.ml: Array Fun Hashtbl List String Wb_bignum
