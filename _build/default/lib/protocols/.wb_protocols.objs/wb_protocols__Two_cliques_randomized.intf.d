lib/protocols/two_cliques_randomized.mli: Wb_model
