lib/protocols/connectivity_sync.ml: Bfs_common Wb_model
