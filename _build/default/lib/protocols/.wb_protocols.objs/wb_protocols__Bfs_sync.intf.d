lib/protocols/bfs_sync.mli: Wb_model
