lib/protocols/via_build.mli: Wb_model
