lib/protocols/mis_simsync.ml: Codec List Printf Wb_model Wb_support
