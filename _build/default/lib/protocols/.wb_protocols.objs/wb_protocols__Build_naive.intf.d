lib/protocols/build_naive.mli: Wb_model
