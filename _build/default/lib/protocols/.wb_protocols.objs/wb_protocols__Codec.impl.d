lib/protocols/codec.ml: Array Wb_bignum Wb_support
