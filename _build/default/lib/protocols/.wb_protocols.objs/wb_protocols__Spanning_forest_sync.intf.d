lib/protocols/spanning_forest_sync.mli: Wb_model
