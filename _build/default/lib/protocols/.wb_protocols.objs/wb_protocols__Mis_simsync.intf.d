lib/protocols/mis_simsync.mli: Wb_model
