lib/protocols/two_cliques_randomized.ml: Codec Hashtbl Int64 List Option Printf Wb_model Wb_support
