lib/protocols/build_degenerate.ml: Array Codec Decode Hashtbl List Printf Queue Wb_bignum Wb_graph Wb_model Wb_support
