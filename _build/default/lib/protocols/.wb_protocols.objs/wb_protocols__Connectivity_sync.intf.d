lib/protocols/connectivity_sync.mli: Wb_model
