lib/protocols/sketch_connectivity.mli: Wb_model
