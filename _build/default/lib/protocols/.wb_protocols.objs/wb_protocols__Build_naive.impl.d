lib/protocols/build_naive.ml: Array Codec Wb_graph Wb_model Wb_support
