lib/protocols/subgraph_simasync.mli: Wb_model
