lib/protocols/codec.mli: Wb_bignum Wb_support
