lib/protocols/eob_bfs_async.mli: Wb_model
