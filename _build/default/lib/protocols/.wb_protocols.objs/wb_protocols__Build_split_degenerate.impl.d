lib/protocols/build_split_degenerate.ml: Array Codec Decode List Printf Wb_bignum Wb_graph Wb_model Wb_support
