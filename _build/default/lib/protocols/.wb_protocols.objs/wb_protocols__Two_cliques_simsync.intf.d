lib/protocols/two_cliques_simsync.mli: Wb_model
