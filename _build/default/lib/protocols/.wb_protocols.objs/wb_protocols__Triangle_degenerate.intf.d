lib/protocols/triangle_degenerate.mli: Wb_model
