lib/protocols/registry.mli: Wb_graph Wb_model
