(** TRIANGLE on the bounded-degeneracy promise class, in SIMASYNC[k^2 log n].

    BUILD is solvable there (Theorem 2), and full reconstruction answers any
    question — this realises the Table 2 TRIANGLE row's positive side on
    the restricted class.  (The paper asserts TRIANGLE ∈ PSIMSYNC[log n] on
    general graphs without exhibiting a protocol; on general graphs our
    repository probes that cell exhaustively at small n instead — see
    wb_synth.)  Answers [Reject] outside the promise class. *)

val protocol : k:int -> Wb_model.Protocol.t
