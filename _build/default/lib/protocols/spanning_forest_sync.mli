(** SPANNING-TREE, the other half of Open Problem 2: solvable in
    SYNC[log n].  The Theorem 10 BFS protocol already writes each node's
    parent; reading the parent edges off the final whiteboard yields a
    spanning forest (a spanning tree per connected component). *)

val protocol : Wb_model.Protocol.t
