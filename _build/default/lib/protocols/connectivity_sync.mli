(** Open Problem 2, the SYNC side: CONNECTIVITY (and implicitly
    SPANNING-TREE) is solvable in SYNC[log n] by running the Theorem 10 BFS
    protocol and counting ROOT messages — one per connected component.
    Whether ASYNC suffices is the paper's open question. *)

val protocol : Wb_model.Protocol.t
