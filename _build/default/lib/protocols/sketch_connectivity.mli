(** Randomized SIMASYNC connectivity and spanning forests by linear graph
    sketching (Ahn-Guha-McGregor style) — the modern constructive answer to
    the paper's Open Problems 2 and 4.

    With shared randomness, each node writes [O(log^3 n)] bits: a stack of
    l0-sampler sketches of its signed incidence vector (edge slot
    [{i,j}, i<j] carries [+1] at node [i] and [-1] at node [j], so summing
    the vectors of a node set cancels internal edges and leaves exactly the
    boundary).  The sketches are {e linear}, so the referee can run Borůvka
    entirely on the whiteboard: sum each component's sketches, l0-sample one
    outgoing edge, merge, repeat with a fresh sketch copy per round.

    One-sided fingerprint errors make the answer correct with high
    probability; the error rate is measured in the bench ([open] section).
    Messages are [Theta(log^3 n)] bits — asymptotically [o(n)], with the
    usual sketching constants (the crossover against the trivial n-bit row
    protocol sits in the thousands of nodes). *)

val connectivity : seed:int -> Wb_model.Protocol.t
(** Answers [Bool]: is the graph connected? *)

val spanning_forest : seed:int -> Wb_model.Protocol.t
(** Answers [Edge_set]: a spanning forest (whp). *)

val copies : n:int -> int
(** Borůvka rounds / sketch copies used at size [n]. *)

val levels : n:int -> int
(** Subsampling levels per copy. *)
