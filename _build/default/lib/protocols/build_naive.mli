(** The trivial BUILD protocol from the introduction: every node writes its
    full adjacency row ([n] bits), so the whole graph lands on the
    whiteboard.  SIMASYNC[n] — correct on {e all} graphs, used as the
    baseline the [O(log n)] protocols are measured against. *)

val protocol : Wb_model.Protocol.t
