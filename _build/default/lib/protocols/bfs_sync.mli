(** Theorem 10: BFS on arbitrary graphs in SYNC[log n].

    The layer-certificate protocol of Theorem 7 extended with the
    within-layer degree [d0], which must be composed at {e write} time
    (nodes keep updating their pending message as same-layer neighbours
    write) — this is precisely the synchronous capability ASYNC lacks, and
    why the paper conjectures BFS ∉ PASYNC (Open Problem 3). *)

val protocol : Wb_model.Protocol.t
