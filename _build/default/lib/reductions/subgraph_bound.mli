(** Theorem 9, the orthogonality of message size and synchronisation.

    SUBGRAPH_f restricted to graphs whose edges all lie among the first
    [f(n)] nodes {e is} BUILD for that class, which takes [C(f(n), 2)] bits
    of whiteboard; so any model — even SYNC — needs messages of
    [Omega(f(n)^2 / n)] bits, while SIMASYNC does it with [f(n)] bits.
    For [g(n) = o(f(n))] the SYNC side fails: a resource no synchronisation
    power can buy back. *)

type row = {
  n : int;
  f : int;  (** f(n). *)
  sim_async_bits : int;  (** what the Theorem 9 protocol actually uses. *)
  lower_bound_bits : int;  (** Lemma 3 floor for any model's message size. *)
}

val evaluate : cutoff:(int -> int) -> ns:int list -> row list
(** [sim_async_bits] is measured by running the real protocol on a worst
    case instance (clique on the first [f n] nodes). *)

val sync_infeasible : n:int -> f:int -> g_bits:int -> bool
(** Whether [g_bits]-bit messages are ruled out by the counting bound. *)
