(** Theorem 8 / Figure 2: EOB-BFS is SIMSYNC-hard via reduction from BUILD
    on even-odd-bipartite graphs.

    The input graph lives on paper identifiers [2..n] of a [(2n-1)]-node
    gadget [G_i] ([n] odd): node [v_1] hooks onto a fresh pendant path
    leading into [v_i], and every node of the input gets one pendant
    neighbour of its own.  Then an (even-identifier) node [v_j] sits at
    distance 3 from [v_1] exactly when [{v_i, v_j}] is an input edge — so
    BFS layers rooted at [v_1] reveal [v_i]'s whole neighbourhood.

    Crucially the pendant attachments do not depend on [i], so in a
    SIMSYNC run where the input nodes speak first their messages are the
    same in {e every} [G_i]; the transformed protocol writes that one
    message and the output replays all gadgets. *)

val input_ok : Wb_graph.Graph.t -> bool
(** Even order and even-odd-bipartite: the inputs the reduction accepts. *)

val gadget : Wb_graph.Graph.t -> target:int -> Wb_graph.Graph.t
(** [gadget g ~target] is [G_i] for [i = target + 2] (so [target] must be an
    odd node index of [g]).  Node 0 of the result is [v_1]. *)

val gadget_faithful : Wb_graph.Graph.t -> target:int -> bool
(** Distance-3 layer of node 0 = neighbourhood of [target], as Figure 2
    promises. *)

val transform : Wb_model.Protocol.t -> Wb_model.Protocol.t
(** Turns a SIMSYNC EOB-BFS protocol into a SIMSYNC BUILD protocol for
    even-odd-bipartite graphs of even order, with identical message size
    (at the gadget scale [2n - 1]). *)
