module Nat = Wb_bignum.Nat

type graph_class = { name : string; count : int -> Wb_bignum.Nat.t }

let pow2 e = Nat.shift_left Nat.one e

let all_graphs = { name = "all graphs"; count = (fun n -> pow2 (n * (n - 1) / 2)) }

let balanced_bipartite =
  { name = "balanced bipartite (fixed parts)"; count = (fun n -> pow2 (n / 2 * (n / 2))) }

let even_odd_bipartite =
  { name = "even-odd bipartite"; count = (fun n -> pow2 ((n + 1) / 2 * (n / 2))) }

let labelled_trees =
  { name = "labelled trees";
    count = (fun n -> if n <= 2 then Nat.one else Nat.pow_int n (n - 2)) }

let isolated_tail ~f =
  { name = "edges only among first f(n) nodes";
    count =
      (fun n ->
        let j = max 0 (min n (f n)) in
        pow2 (j * (j - 1) / 2)) }

let class_bits cls n =
  let c = cls.count n in
  if Nat.is_zero c then 0 else Nat.bit_length (Nat.sub c Nat.one)

let board_capacity_bits ~n ~f_bits = n * f_bits

let min_message_bits cls n = if n = 0 then 0 else (class_bits cls n + n - 1) / n

let feasible cls ~n ~f_bits = class_bits cls n <= board_capacity_bits ~n ~f_bits
