module P = Wb_model

type row = { n : int; f : int; sim_async_bits : int; lower_bound_bits : int }

let worst_case_instance ~n ~f =
  let j = max 0 (min n f) in
  let acc = ref [] in
  for u = 0 to j - 1 do
    for v = u + 1 to j - 1 do
      acc := (u, v) :: !acc
    done
  done;
  Wb_graph.Graph.of_edges n !acc

let evaluate ~cutoff ~ns =
  List.map
    (fun n ->
      let f = max 0 (min n (cutoff n)) in
      let g = worst_case_instance ~n ~f in
      let protocol = Wb_protocols.Subgraph_simasync.protocol ~cutoff in
      let run = P.Engine.run_packed protocol g P.Adversary.min_id in
      let sim_async_bits = run.P.Engine.stats.max_message_bits in
      let cls = Counting.isolated_tail ~f:cutoff in
      { n; f; sim_async_bits; lower_bound_bits = Counting.min_message_bits cls n })
    ns

let sync_infeasible ~n ~f ~g_bits =
  not (Counting.feasible (Counting.isolated_tail ~f:(fun _ -> f)) ~n ~f_bits:g_bits)
