(** Lemma 3, made executable.

    If BUILD restricted to a class [G] of [g(n)] graphs is solvable with
    messages of [f(n)] bits, the final whiteboard — at most [n * f(n)] bits —
    must distinguish all [g(n)] graphs, so [log2 g(n) <= n * f(n)].
    This module computes exact class counts with {!Wb_bignum.Nat} and
    evaluates the inequality, giving the per-node information-theoretic
    lower bound each impossibility proof in the paper bottoms out in. *)

type graph_class = { name : string; count : int -> Wb_bignum.Nat.t }

val all_graphs : graph_class
(** [2^(n(n-1)/2)] labelled graphs. *)

val balanced_bipartite : graph_class
(** [2^((n/2)^2)] with fixed parts — the class of Theorem 3's contradiction. *)

val even_odd_bipartite : graph_class
(** [2^(ceil(n/2) * floor(n/2))] — Theorem 8's class. *)

val labelled_trees : graph_class
(** Cayley: [n^(n-2)] — a lower bound on forests, showing the Section 3
    protocol's [O(log n)] message size is optimal. *)

val isolated_tail : f:(int -> int) -> graph_class
(** Graphs where only the first [f n] nodes may carry edges —
    [2^(C(f n, 2))], Theorem 9's class. *)

val class_bits : graph_class -> int -> int
(** [ceil(log2 g(n))]: bits needed to name a member. *)

val board_capacity_bits : n:int -> f_bits:int -> int
(** [n * f_bits]: the most the whiteboard can carry. *)

val min_message_bits : graph_class -> int -> int
(** [ceil(class_bits / n)]: no protocol can BUILD the class with smaller
    messages. *)

val feasible : graph_class -> n:int -> f_bits:int -> bool
(** Whether the Lemma 3 necessary condition holds. *)
