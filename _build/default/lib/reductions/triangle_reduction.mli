(** Theorem 3 / Figure 1: TRIANGLE is SIMASYNC-hard via reduction from
    BUILD on bipartite graphs.

    The gadget [G'_{s,t}] adds one apex node adjacent to exactly [v_s] and
    [v_t]; in a triangle-free (in particular bipartite) graph the gadget
    contains a triangle iff [{v_s, v_t}] is an edge.

    [transform] is the constructive core of the proof: it turns {e any}
    SIMASYNC protocol for TRIANGLE on [(n+1)]-node graphs into a SIMASYNC
    protocol for BUILD on triangle-free n-node graphs whose messages are
    two simulated messages plus an identifier — [2 f(n+1) + O(log n)] bits.
    Running it with an [o(n)]-bit triangle protocol would contradict
    Lemma 3's count of bipartite graphs; that is the impossibility. *)

val gadget : Wb_graph.Graph.t -> s:int -> t:int -> Wb_graph.Graph.t
(** [gadget g ~s ~t] is [G'_{s,t}] (the apex is node [n g]). *)

val gadget_faithful : Wb_graph.Graph.t -> bool
(** For a triangle-free input: checks over {e all} pairs that the gadget
    has a triangle iff the pair is an edge. *)

val transform : Wb_model.Protocol.t -> Wb_model.Protocol.t
(** The protocol transformer; the input must be a SIMASYNC protocol
    answering [Bool] for TRIANGLE.  @raise Invalid_argument otherwise. *)
