(** Wide-message "oracle" protocols used to exercise the reduction
    transformers end to end.

    The impossibility theorems say no [o(n)]-bit protocol exists for these
    problems in the weak models; the {e transformers}, however, are
    constructive and work for any message size.  Feeding them these
    [O(n)]-bit oracles lets tests execute the full simulation pipeline and
    check that the reduction logic is faithful (the resulting BUILD
    protocols must actually reconstruct). *)

val triangle_simasync : Wb_model.Protocol.t
(** Each node writes its adjacency row; output scans for a triangle. *)

val mis_simasync : root:int -> Wb_model.Protocol.t
(** Each node writes its row; output reconstructs and returns the greedy
    MIS containing [root]. *)

val eob_bfs_simsync : Wb_model.Protocol.t
(** Row-writing EOB-BFS (SIMSYNC; messages happen to ignore the board). *)
