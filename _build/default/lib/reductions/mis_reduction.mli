(** Theorem 6: rooted MIS is SIMASYNC-hard via reduction from BUILD on
    arbitrary graphs.

    The gadget [G^(x)_{i,j}] adds an apex [x] adjacent to everything except
    [v_i] and [v_j]; then [{x, v_i, v_j}] is the unique MIS containing [x]
    iff [{v_i, v_j}] is a non-edge.  Since a SIMASYNC message depends only
    on the node's neighbourhood, node [v_k] sends just two distinct messages
    across all gadgets ("apex adjacent" / "apex not adjacent"), so one run
    of the transformed protocol carries enough to replay {e every} gadget. *)

val gadget : Wb_graph.Graph.t -> i:int -> j:int -> Wb_graph.Graph.t
(** The apex is node [n g]. *)

val gadget_faithful : Wb_graph.Graph.t -> bool
(** Checks, over all pairs, that the apex's maximal independent sets
    characterise edges as the theorem states. *)

val transform : make_inner:(root:int -> Wb_model.Protocol.t) -> Wb_model.Protocol.t
(** [transform ~make_inner] builds a SIMASYNC BUILD protocol for arbitrary
    graphs out of a family of SIMASYNC rooted-MIS protocols;
    [make_inner ~root] must solve MIS-containing-[root] and is instantiated
    with the apex (node [n] of the [(n+1)]-node gadget system). *)
