lib/reductions/eob_bfs_reduction.mli: Wb_graph Wb_model
