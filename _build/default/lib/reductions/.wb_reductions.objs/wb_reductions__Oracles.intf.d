lib/reductions/oracles.mli: Wb_model
