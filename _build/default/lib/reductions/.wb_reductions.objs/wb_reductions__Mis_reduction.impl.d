lib/reductions/mis_reduction.ml: Array Fun List Wb_graph Wb_model Wb_protocols Wb_support
