lib/reductions/triangle_reduction.ml: Array Printf Wb_graph Wb_model Wb_protocols Wb_support
