lib/reductions/subgraph_bound.mli:
