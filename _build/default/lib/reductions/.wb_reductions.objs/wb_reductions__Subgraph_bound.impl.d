lib/reductions/subgraph_bound.ml: Counting List Wb_graph Wb_model Wb_protocols
