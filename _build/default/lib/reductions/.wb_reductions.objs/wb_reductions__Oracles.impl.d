lib/reductions/oracles.ml: Array Printf Wb_graph Wb_model Wb_protocols Wb_support
