lib/reductions/eob_bfs_reduction.ml: Array Fun Hashtbl List Printf Wb_graph Wb_model Wb_support
