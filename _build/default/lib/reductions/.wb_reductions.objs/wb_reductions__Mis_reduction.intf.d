lib/reductions/mis_reduction.mli: Wb_graph Wb_model
