lib/reductions/triangle_reduction.mli: Wb_graph Wb_model
