lib/reductions/counting.mli: Wb_bignum
