lib/reductions/counting.ml: Wb_bignum
