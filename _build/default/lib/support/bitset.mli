(** Fixed-capacity sets of small integers, packed 63 elements per word.

    Used for graph incidence vectors and board bookkeeping.  All operations
    check bounds; the capacity is fixed at creation. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val set : t -> int -> bool -> unit
(** [set s i b] adds [i] when [b], removes it otherwise. *)

val cardinal : t -> int
val is_empty : t -> bool

val copy : t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] holds when every element of [a] is in [b].  Requires equal
    capacities. *)

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. *)

val inter_into : t -> t -> unit
val diff_into : t -> t -> unit

val iter : (int -> unit) -> t -> unit
(** Iterates elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val to_array : t -> int array
val pp : Format.formatter -> t -> unit
