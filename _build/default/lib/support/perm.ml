let identity n = Array.init n (fun i -> i)

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter (fun v -> if v < 0 || v >= n || seen.(v) then ok := false else seen.(v) <- true) a;
  !ok

let inverse a =
  assert (is_permutation a);
  let inv = Array.make (Array.length a) 0 in
  Array.iteri (fun i v -> inv.(v) <- i) a;
  inv

let random g n =
  let a = identity n in
  Prng.shuffle g a;
  a

let factorial n =
  if n < 0 || n > 20 then invalid_arg "Perm.factorial";
  let rec go n acc = if n <= 1 then acc else go (n - 1) (acc * n) in
  go n 1

let iter_all n f =
  let a = identity n in
  let rec go k =
    if k <= 1 then f a
    else
      for i = 0 to k - 1 do
        go (k - 1);
        if i < k - 1 then begin
          let j = if k mod 2 = 0 then i else 0 in
          let tmp = a.(j) in
          a.(j) <- a.(k - 1);
          a.(k - 1) <- tmp
        end
      done
  in
  if n = 0 then f a else go n
