(** Growable arrays (the stdlib gains these only in OCaml 5.2). *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument on empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val truncate : 'a t -> int -> unit
(** [truncate d len] drops elements past index [len - 1]. *)
