(** Binary min-heaps with a caller-supplied ordering. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
val drain : 'a t -> 'a list
(** Pops everything, in increasing order. *)
