(** Bit-exact message buffers.

    Whiteboard messages are measured in bits (the paper's size bounds are
    [O(log n)] or [o(n)] bits), so payloads are encoded through this module
    rather than through native values.  [Writer] appends bits to a growable
    buffer; [Reader] consumes them in order.  Elias gamma/delta codes give
    self-delimiting naturals so message layouts need no explicit lengths. *)

module Writer : sig
  type t

  val create : unit -> t

  val length_bits : t -> int
  (** Number of bits written so far. *)

  val bit : t -> bool -> unit

  val fixed : t -> width:int -> int -> unit
  (** [fixed w ~width v] appends the [width] low bits of [v], most significant
      first.  Requires [0 <= width <= 62] and [0 <= v < 2^width]. *)

  val gamma : t -> int -> unit
  (** Elias gamma code of a positive integer. *)

  val delta : t -> int -> unit
  (** Elias delta code of a positive integer. *)

  val nat : t -> int -> unit
  (** Self-delimiting code of a natural ([>= 0]): delta of [v + 1]. *)

  val contents : t -> bool array
  (** Snapshot of the bits written so far. *)
end

module Reader : sig
  type t

  val of_bits : bool array -> t

  val remaining : t -> int
  val bit : t -> bool
  val fixed : t -> width:int -> int
  val gamma : t -> int
  val delta : t -> int
  val nat : t -> int

  exception Underflow
  (** Raised when reading past the end of the buffer. *)
end

val width_of : int -> int
(** [width_of v] is the number of bits needed to store [v >= 0]
    ([width_of 0 = 0]). *)
