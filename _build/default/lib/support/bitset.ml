let word_bits = 63

type t = { n : int; words : int array }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make ((n + word_bits - 1) / word_bits + 1) 0 }

let capacity s = s.n

let check s i op = if i < 0 || i >= s.n then invalid_arg ("Bitset." ^ op ^ ": out of range")

let mem s i =
  check s i "mem";
  s.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add s i =
  check s i "add";
  s.words.(i / word_bits) <- s.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove s i =
  check s i "remove";
  s.words.(i / word_bits) <- s.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let set s i b = if b then add s i else remove s i

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let copy s = { n = s.n; words = Array.copy s.words }

let same_capacity a b op =
  if a.n <> b.n then invalid_arg ("Bitset." ^ op ^ ": capacity mismatch")

let equal a b =
  same_capacity a b "equal";
  a.words = b.words

let subset a b =
  same_capacity a b "subset";
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let union_into dst src =
  same_capacity dst src "union_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into dst src =
  same_capacity dst src "inter_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let diff_into dst src =
  same_capacity dst src "diff_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let iter f s =
  for wi = 0 to Array.length s.words - 1 do
    let w = ref s.words.(wi) in
    while !w <> 0 do
      let low = !w land - !w in
      let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
      f ((wi * word_bits) + log2 low 0);
      w := !w land lnot low
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n l =
  let s = create n in
  List.iter (add s) l;
  s

let to_array s =
  let out = Array.make (cardinal s) 0 in
  let i = ref 0 in
  iter (fun v -> out.(!i) <- v; incr i) s;
  out

let pp ppf s =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int) (to_list s)
