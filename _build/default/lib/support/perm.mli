(** Permutations of [\[0, n)], used for adversarial schedules and
    exhaustive small-instance checks. *)

val identity : int -> int array
val inverse : int array -> int array
val is_permutation : int array -> bool
val random : Prng.t -> int -> int array
val factorial : int -> int
(** Exact for [n <= 20]; raises [Invalid_argument] above. *)

val iter_all : int -> (int array -> unit) -> unit
(** Visits every permutation of [\[0, n)] exactly once (Heap's algorithm).
    The array passed to the callback is reused; copy it to keep it. *)
