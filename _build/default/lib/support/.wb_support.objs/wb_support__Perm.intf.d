lib/support/perm.mli: Prng
