lib/support/bitbuf.mli:
