lib/support/prng.mli:
