lib/support/perm.ml: Array Prng
