lib/support/dynarray.ml: Array
