lib/support/prng.ml: Array Hashtbl Int64
