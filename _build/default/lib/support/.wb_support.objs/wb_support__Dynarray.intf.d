lib/support/dynarray.mli:
