lib/support/bitbuf.ml: Array Bytes Char
