lib/support/heap.ml: Array Dynarray List
