lib/support/heap.mli:
