type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n v = { data = Array.make (max n 1) v; len = n }

let length d = d.len

let is_empty d = d.len = 0

let check d i op = if i < 0 || i >= d.len then invalid_arg ("Dynarray." ^ op)

let get d i = check d i "get"; d.data.(i)

let set d i v = check d i "set"; d.data.(i) <- v

let push d v =
  if d.len = Array.length d.data then begin
    let cap = max 8 (2 * Array.length d.data) in
    let bigger = Array.make cap v in
    Array.blit d.data 0 bigger 0 d.len;
    d.data <- bigger
  end;
  d.data.(d.len) <- v;
  d.len <- d.len + 1

let pop d =
  if d.len = 0 then invalid_arg "Dynarray.pop";
  d.len <- d.len - 1;
  d.data.(d.len)

let last d = check d (d.len - 1) "last"; d.data.(d.len - 1)

let clear d = d.len <- 0

let iter f d = for i = 0 to d.len - 1 do f d.data.(i) done

let iteri f d = for i = 0 to d.len - 1 do f i d.data.(i) done

let fold_left f init d =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) d;
  !acc

let exists p d =
  let rec go i = i < d.len && (p d.data.(i) || go (i + 1)) in
  go 0

let to_array d = Array.sub d.data 0 d.len

let to_list d = Array.to_list (to_array d)

let of_array a = { data = Array.copy a; len = Array.length a }

let truncate d len =
  if len < 0 || len > d.len then invalid_arg "Dynarray.truncate";
  d.len <- len
