let width_of v =
  if v < 0 then invalid_arg "Bitbuf.width_of";
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

module Writer = struct
  type t = { mutable bits : Bytes.t; mutable len : int }

  let create () = { bits = Bytes.make 16 '\000'; len = 0 }

  let length_bits w = w.len

  let ensure w =
    if w.len >= 8 * Bytes.length w.bits then begin
      let bigger = Bytes.make (2 * Bytes.length w.bits) '\000' in
      Bytes.blit w.bits 0 bigger 0 (Bytes.length w.bits);
      w.bits <- bigger
    end

  let bit w b =
    ensure w;
    if b then begin
      let byte = Char.code (Bytes.get w.bits (w.len / 8)) in
      Bytes.set w.bits (w.len / 8) (Char.chr (byte lor (1 lsl (w.len mod 8))))
    end;
    w.len <- w.len + 1

  let fixed w ~width v =
    if width < 0 || width > 62 then invalid_arg "Bitbuf.fixed: width";
    if v < 0 || (width < 62 && v lsr width <> 0) then invalid_arg "Bitbuf.fixed: value out of range";
    for i = width - 1 downto 0 do
      bit w ((v lsr i) land 1 = 1)
    done

  let gamma w v =
    if v <= 0 then invalid_arg "Bitbuf.gamma: needs positive";
    let width = width_of v in
    for _ = 1 to width - 1 do bit w false done;
    fixed w ~width v

  let delta w v =
    if v <= 0 then invalid_arg "Bitbuf.delta: needs positive";
    let width = width_of v in
    gamma w width;
    (* The leading 1 of [v] is implied by the gamma-coded width. *)
    fixed w ~width:(width - 1) (v - (1 lsl (width - 1)))

  let nat w v =
    if v < 0 then invalid_arg "Bitbuf.nat: needs natural";
    delta w (v + 1)

  let contents w = Array.init w.len (fun i -> Char.code (Bytes.get w.bits (i / 8)) land (1 lsl (i mod 8)) <> 0)
end

module Reader = struct
  exception Underflow

  type t = { data : bool array; mutable pos : int }

  let of_bits data = { data; pos = 0 }

  let remaining r = Array.length r.data - r.pos

  let bit r =
    if r.pos >= Array.length r.data then raise Underflow;
    let b = r.data.(r.pos) in
    r.pos <- r.pos + 1;
    b

  let fixed r ~width =
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if bit r then 1 else 0)
    done;
    !v

  let gamma r =
    let zeros = ref 0 in
    while not (bit r) do incr zeros done;
    let v = ref 1 in
    for _ = 1 to !zeros do
      v := (!v lsl 1) lor (if bit r then 1 else 0)
    done;
    !v

  let delta r =
    let width = gamma r in
    (1 lsl (width - 1)) lor fixed r ~width:(width - 1)

  let nat r = delta r - 1
end
