type 'a t = { cmp : 'a -> 'a -> int; data : 'a Dynarray.t }

let create ~cmp = { cmp; data = Dynarray.create () }

let length h = Dynarray.length h.data

let is_empty h = length h = 0

let swap h i j =
  let tmp = Dynarray.get h.data i in
  Dynarray.set h.data i (Dynarray.get h.data j);
  Dynarray.set h.data j tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (Dynarray.get h.data i) (Dynarray.get h.data parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = length h in
  let smallest = ref i in
  let consider j =
    if j < n && h.cmp (Dynarray.get h.data j) (Dynarray.get h.data !smallest) < 0 then smallest := j
  in
  consider ((2 * i) + 1);
  consider ((2 * i) + 2);
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h v =
  Dynarray.push h.data v;
  sift_up h (length h - 1)

let peek h = if is_empty h then None else Some (Dynarray.get h.data 0)

let pop h =
  if is_empty h then None
  else begin
    let top = Dynarray.get h.data 0 in
    let bottom = Dynarray.pop h.data in
    if not (is_empty h) then begin
      Dynarray.set h.data 0 bottom;
      sift_down h 0
    end;
    Some top
  end

let of_array ~cmp a =
  let h = create ~cmp in
  Array.iter (push h) a;
  h

let drain h =
  let rec go acc = match pop h with None -> List.rev acc | Some v -> go (v :: acc) in
  go []
