(** DIMACS CNF serialisation — handy for debugging synthesis encodings with
    external tools and for test fixtures. *)

type cnf = { nvars : int; clauses : int list list }

val to_string : cnf -> string
val of_string : string -> cnf
(** @raise Invalid_argument on malformed input. *)

val solver_of_cnf : cnf -> Solver.t
