lib/sat/solver.ml: Array List Wb_support
