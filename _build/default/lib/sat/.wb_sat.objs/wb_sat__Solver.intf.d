lib/sat/solver.mli:
