type cnf = { nvars : int; clauses : int list list }

let to_string { nvars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let of_string text =
  let nvars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; "cnf"; v; _ ] -> nvars := int_of_string v
        | _ -> invalid_arg "Dimacs.of_string: bad problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> invalid_arg "Dimacs.of_string: bad literal"
               | Some 0 ->
                 clauses := List.rev !current :: !clauses;
                 current := []
               | Some l -> current := l :: !current))
    lines;
  if !nvars < 0 then invalid_arg "Dimacs.of_string: missing problem line";
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { nvars = !nvars; clauses = List.rev !clauses }

let solver_of_cnf { nvars; clauses } =
  let s = Solver.create nvars in
  List.iter (Solver.add_clause s) clauses;
  s
