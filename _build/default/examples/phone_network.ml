(* The paper's opening motivation: nodes are phone numbers, links are calls,
   and the link relation does NOT restrict communication — every phone can
   post one short message to a shared whiteboard.

   Call graphs are massive but sparse with heavy-tailed degrees; a
   Barabási-Albert network has degeneracy <= m even though hub degrees grow
   without bound, so the Section 3 protocol reconstructs the entire network
   from one O(m^2 log n) -bit message per phone — compare the naive
   protocol's Theta(n) bits.

     dune exec examples/phone_network.exe *)

module P = Wb_model
module G = Wb_graph

let () =
  let rng = Wb_support.Prng.create 555 in
  let n = 400 in
  let m = 3 in
  let calls = G.Gen.preferential_attachment rng n ~m in
  let degeneracy, _ = G.Algo.degeneracy calls in
  Printf.printf "call graph: %d phones, %d call links, max degree %d, degeneracy %d\n" n
    (G.Graph.num_edges calls) (G.Graph.max_degree calls) degeneracy;

  let smart = Wb_protocols.Build_degenerate.protocol ~k:degeneracy ~decoder:`Backtracking in
  let naive = Wb_protocols.Build_naive.protocol in
  let adversary = P.Adversary.random rng in

  let measure name protocol =
    let run = P.Engine.run_packed protocol calls adversary in
    match run.P.Engine.outcome with
    | P.Engine.Success (P.Answer.Graph h) when G.Graph.equal calls h ->
      Printf.printf "%-22s reconstructed; max message %4d bits, board %6d bits\n" name
        run.P.Engine.stats.max_message_bits run.P.Engine.stats.total_bits
    | _ -> Printf.printf "%-22s FAILED\n" name
  in
  measure "power-sum protocol" smart;
  measure "naive row protocol" naive;
  Printf.printf "\n(the power-sum message grows like k^2 log n; the naive one like n = %d bits —\n\
                 at call-graph scale (n ~ 10^9) that is the difference between ~40 bytes\n\
                 and ~125 MB per phone.)\n" n;

  (* Robustness: if someone densifies the network beyond the promised
     degeneracy, the output function notices instead of mis-reconstructing. *)
  let dense = G.Gen.random_gnp rng 60 0.6 in
  let run = P.Engine.run_packed smart dense adversary in
  match run.P.Engine.outcome with
  | P.Engine.Success P.Answer.Reject ->
    Printf.printf "off-promise dense graph rejected (degeneracy %d > %d)\n"
      (fst (G.Algo.degeneracy dense)) degeneracy
  | _ -> print_endline "unexpected: dense graph not rejected"
