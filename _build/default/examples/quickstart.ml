(* Quickstart: reconstruct a forest from one O(log n)-bit message per node.

   Every node knows only its own identifier and its neighbours.  Each writes
   a single message — (ID, degree, sum of neighbour IDs) — to a shared
   whiteboard, in an order chosen by an adversary; the final whiteboard
   alone determines the whole forest (Section 3.1 of the paper).

     dune exec examples/quickstart.exe *)

module P = Wb_model
module G = Wb_graph

let () =
  let seed = 2012 in
  let rng = Wb_support.Prng.create seed in

  (* A random labelled forest on 24 nodes. *)
  let forest = G.Gen.random_forest rng 24 ~keep:0.7 in
  Format.printf "input %a@." G.Graph.pp forest;

  (* Run the SIMASYNC BUILD protocol under a random adversary. *)
  let protocol = Wb_protocols.Build_forest.protocol in
  let adversary = P.Adversary.random rng in
  let run = P.Engine.run_packed protocol forest adversary in

  Printf.printf "the adversary scheduled writes in the order: %s\n"
    (String.concat " "
       (List.map (fun v -> string_of_int (v + 1)) (Array.to_list run.P.Engine.writes)));
  Printf.printf "largest message: %d bits (4 * log2 24 = %d)\n"
    run.P.Engine.stats.max_message_bits
    (4 * Wb_support.Bitbuf.width_of 24);

  (* The output function reads only the whiteboard. *)
  (match run.P.Engine.outcome with
  | P.Engine.Success (P.Answer.Graph rebuilt) ->
    Printf.printf "reconstruction exact: %b\n" (G.Graph.equal forest rebuilt)
  | _ -> print_endline "unexpected failure");

  (* The protocol is robust: on a graph with a cycle it answers Reject. *)
  let cyclic = G.Gen.cycle 8 in
  let run = P.Engine.run_packed protocol cyclic adversary in
  (match run.P.Engine.outcome with
  | P.Engine.Success P.Answer.Reject -> print_endline "cycle input correctly rejected"
  | _ -> print_endline "unexpected: cycle not rejected")
