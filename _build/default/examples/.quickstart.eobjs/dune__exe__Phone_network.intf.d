examples/phone_network.mli:
