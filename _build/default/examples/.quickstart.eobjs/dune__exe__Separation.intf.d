examples/separation.mli:
