examples/bfs_layers.mli:
