examples/quickstart.mli:
