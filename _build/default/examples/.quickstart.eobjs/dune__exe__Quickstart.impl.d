examples/quickstart.ml: Array Format List Printf String Wb_graph Wb_model Wb_protocols Wb_support
