examples/bfs_layers.ml: Array Fun List Printf String Wb_graph Wb_model Wb_protocols Wb_support
