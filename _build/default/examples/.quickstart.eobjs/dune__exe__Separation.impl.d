examples/separation.ml: List Printf String Wb_bignum Wb_graph Wb_model Wb_protocols Wb_reductions Wb_support
