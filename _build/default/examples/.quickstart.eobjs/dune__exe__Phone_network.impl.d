examples/phone_network.ml: Printf Wb_graph Wb_model Wb_protocols Wb_support
