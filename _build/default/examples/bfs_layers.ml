(* BFS on the whiteboard: how layer-completion certificates defeat the
   adversary, and why asynchrony breaks on odd cycles.

   The SYNC protocol (Theorem 10) lets every pending node keep updating its
   message; the whiteboard's running edge counts prove "layer k has fully
   written", which is when layer k+1 wakes up.  The ASYNC variant freezes
   messages at activation: on bipartite graphs that is still enough
   (Corollary 4), but a within-layer edge starves the certificate and the
   execution deadlocks — the paper's evidence for Open Problem 3.

     dune exec examples/bfs_layers.exe *)

module P = Wb_model
module G = Wb_graph

let show_layers g (run : P.Engine.run) =
  match run.P.Engine.outcome with
  | P.Engine.Success (P.Answer.Forest parent) ->
    let depth = Array.make (Array.length parent) 0 in
    let rec d v = if parent.(v) < 0 then 0 else 1 + d parent.(v) in
    Array.iteri (fun v _ -> depth.(v) <- d v) parent;
    let max_depth = Array.fold_left max 0 depth in
    for layer = 0 to max_depth do
      let members =
        List.filter (fun v -> depth.(v) = layer) (List.init (Array.length parent) Fun.id)
      in
      Printf.printf "  layer %d: %s\n" layer
        (String.concat " " (List.map (fun v -> string_of_int (v + 1)) members))
    done;
    Printf.printf "  valid BFS forest: %b\n" (G.Algo.is_valid_bfs_forest g parent)
  | P.Engine.Deadlock -> print_endline "  DEADLOCK"
  | _ -> print_endline "  failed"

let () =
  let rng = Wb_support.Prng.create 99 in
  let g = G.Gen.grid 4 5 in
  print_endline "SYNC BFS on a 4x5 grid, spiteful adversary:";
  let adversary = P.Adversary.last_writer_neighbor_avoider g in
  let run = P.Engine.run_packed Wb_protocols.Bfs_sync.protocol g adversary in
  show_layers g run;
  Printf.printf "  writes followed layer order despite the adversary: %s\n\n"
    (String.concat " "
       (List.map (fun v -> string_of_int (v + 1)) (Array.to_list run.P.Engine.writes)));

  print_endline "ASYNC (bipartite) protocol on an even cycle C8:";
  let c8 = G.Gen.cycle 8 in
  show_layers c8 (P.Engine.run_packed Wb_protocols.Bfs_bipartite_async.protocol c8 (P.Adversary.random rng));

  print_endline "\nASYNC (bipartite) protocol on triangle-plus-tail (non-bipartite):";
  let odd = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] in
  show_layers odd (P.Engine.run_packed Wb_protocols.Bfs_bipartite_async.protocol odd (P.Adversary.random rng));
  print_endline "(node 5 waits forever: the edge 2-3 inside layer 1 starves the certificate)";

  print_endline "\nEOB-BFS (Theorem 7) on the same graph: parity detectors rescue termination:";
  show_layers odd (P.Engine.run_packed Wb_protocols.Eob_bfs_async.protocol odd (P.Adversary.random rng));
  let run = P.Engine.run_packed Wb_protocols.Eob_bfs_async.protocol odd (P.Adversary.random rng) in
  (match run.P.Engine.outcome with
  | P.Engine.Success P.Answer.Reject -> print_endline "  -> terminates with Reject on every schedule"
  | _ -> ())
