open Wb_support

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let prng_tests =
  [ Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Prng.create 123 and b = Prng.create 123 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "bits" (Prng.bits64 a) (Prng.bits64 b)
        done);
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let a = Prng.create 1 and b = Prng.create 2 in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Prng.bits64 a = Prng.bits64 b then incr same
        done;
        check "mostly different" true (!same < 4));
    Alcotest.test_case "copy replays" `Quick (fun () ->
        let a = Prng.create 5 in
        ignore (Prng.bits64 a);
        let b = Prng.copy a in
        Alcotest.(check int64) "bits" (Prng.bits64 a) (Prng.bits64 b));
    Alcotest.test_case "split is independent of parent draw count" `Quick (fun () ->
        let a = Prng.create 9 in
        let c = Prng.split a in
        check "child differs from fresh parent stream" true (Prng.bits64 c <> Prng.bits64 a));
    qtest
      (QCheck.Test.make ~name:"int respects bound" ~count:500
         QCheck.(pair small_int (int_range 1 1000))
         (fun (seed, bound) ->
           let g = Prng.create seed in
           let v = Prng.int g bound in
           v >= 0 && v < bound));
    qtest
      (QCheck.Test.make ~name:"in_range inclusive" ~count:500
         QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
         (fun (seed, lo, span) ->
           let g = Prng.create seed in
           let v = Prng.in_range g lo (lo + span) in
           v >= lo && v <= lo + span));
    qtest
      (QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
         QCheck.(pair small_int (int_range 0 40))
         (fun (seed, n) ->
           let g = Prng.create seed in
           let a = Array.init n (fun i -> i) in
           Prng.shuffle g a;
           Perm.is_permutation a));
    qtest
      (QCheck.Test.make ~name:"sample_without_replacement: sorted distinct in range" ~count:300
         QCheck.(triple small_int (int_range 0 30) (int_range 0 30))
         (fun (seed, a, b) ->
           let k = min a b and n = max a b in
           let g = Prng.create seed in
           let s = Prng.sample_without_replacement g k n in
           Array.length s = k
           && Array.for_all (fun v -> v >= 0 && v < n) s
           && Array.to_list s = List.sort_uniq compare (Array.to_list s)));
    Alcotest.test_case "float in [0,1)" `Quick (fun () ->
        let g = Prng.create 17 in
        for _ = 1 to 1000 do
          let f = Prng.float g in
          check "range" true (f >= 0.0 && f < 1.0)
        done) ]

let bitset_tests =
  let reference_ops seed n ops =
    (* Mirror operations on a Bitset and a module Set, compare. *)
    let module IS = Set.Make (Int) in
    let g = Prng.create seed in
    let s = Bitset.create n in
    let r = ref IS.empty in
    for _ = 1 to ops do
      let i = Prng.int g n in
      match Prng.int g 3 with
      | 0 ->
        Bitset.add s i;
        r := IS.add i !r
      | 1 ->
        Bitset.remove s i;
        r := IS.remove i !r
      | _ -> if Bitset.mem s i <> IS.mem i !r then failwith "mem mismatch"
    done;
    Bitset.to_list s = IS.elements !r && Bitset.cardinal s = IS.cardinal !r
  in
  [ qtest
      (QCheck.Test.make ~name:"bitset mirrors Set" ~count:100
         QCheck.(pair small_int (int_range 1 200))
         (fun (seed, n) -> reference_ops seed n 300));
    Alcotest.test_case "set-algebra on word boundaries" `Quick (fun () ->
        let n = 130 in
        let a = Bitset.of_list n [ 0; 62; 63; 64; 126; 129 ] in
        let b = Bitset.of_list n [ 62; 64; 100; 129 ] in
        let u = Bitset.copy a in
        Bitset.union_into u b;
        Alcotest.(check (list int)) "union" [ 0; 62; 63; 64; 100; 126; 129 ] (Bitset.to_list u);
        let i = Bitset.copy a in
        Bitset.inter_into i b;
        Alcotest.(check (list int)) "inter" [ 62; 64; 129 ] (Bitset.to_list i);
        let d = Bitset.copy a in
        Bitset.diff_into d b;
        Alcotest.(check (list int)) "diff" [ 0; 63; 126 ] (Bitset.to_list d);
        check "subset" true (Bitset.subset i a);
        check "not subset" false (Bitset.subset b a));
    Alcotest.test_case "iter is increasing" `Quick (fun () ->
        let s = Bitset.of_list 300 [ 299; 0; 150; 63; 64 ] in
        let prev = ref (-1) in
        Bitset.iter
          (fun v ->
            check "increasing" true (v > !prev);
            prev := v)
          s);
    Alcotest.test_case "bounds are checked" `Quick (fun () ->
        let s = Bitset.create 10 in
        Alcotest.check_raises "add" (Invalid_argument "Bitset.add: out of range") (fun () ->
            Bitset.add s 10)) ]

let bitbuf_tests =
  [ qtest
      (QCheck.Test.make ~name:"nat roundtrip (list)" ~count:300
         QCheck.(small_list (int_range 0 1_000_000))
         (fun vals ->
           let w = Bitbuf.Writer.create () in
           List.iter (Bitbuf.Writer.nat w) vals;
           let r = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w) in
           List.for_all (fun v -> Bitbuf.Reader.nat r = v) vals && Bitbuf.Reader.remaining r = 0));
    qtest
      (QCheck.Test.make ~name:"fixed roundtrip" ~count:300
         QCheck.(pair (int_range 0 62) (int_range 0 max_int))
         (fun (width, v) ->
           let v = if width = 0 then 0 else v land ((1 lsl min width 61) - 1) in
           let width = if width > 61 then 61 else width in
           let w = Bitbuf.Writer.create () in
           Bitbuf.Writer.fixed w ~width v;
           let r = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w) in
           Bitbuf.Reader.fixed r ~width = v));
    qtest
      (QCheck.Test.make ~name:"gamma/delta roundtrip, delta no longer for big values" ~count:300
         QCheck.(int_range 1 10_000_000)
         (fun v ->
           let w1 = Bitbuf.Writer.create () in
           Bitbuf.Writer.gamma w1 v;
           let w2 = Bitbuf.Writer.create () in
           Bitbuf.Writer.delta w2 v;
           let r1 = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w1) in
           let r2 = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w2) in
           Bitbuf.Reader.gamma r1 = v && Bitbuf.Reader.delta r2 = v
           && (v < 32 || Bitbuf.Writer.length_bits w2 <= Bitbuf.Writer.length_bits w1)));
    Alcotest.test_case "width_of" `Quick (fun () ->
        List.iter
          (fun (v, w) -> Alcotest.(check int) (string_of_int v) w (Bitbuf.width_of v))
          [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (255, 8); (256, 9) ]);
    Alcotest.test_case "underflow raises" `Quick (fun () ->
        let r = Bitbuf.Reader.of_bits [| true |] in
        ignore (Bitbuf.Reader.bit r);
        Alcotest.check_raises "bit" Bitbuf.Reader.Underflow (fun () -> ignore (Bitbuf.Reader.bit r)));
    Alcotest.test_case "mixed stream" `Quick (fun () ->
        let w = Bitbuf.Writer.create () in
        Bitbuf.Writer.bit w true;
        Bitbuf.Writer.fixed w ~width:7 99;
        Bitbuf.Writer.nat w 0;
        Bitbuf.Writer.gamma w 1;
        Bitbuf.Writer.delta w 1000;
        let r = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w) in
        check "bit" true (Bitbuf.Reader.bit r);
        Alcotest.(check int) "fixed" 99 (Bitbuf.Reader.fixed r ~width:7);
        Alcotest.(check int) "nat" 0 (Bitbuf.Reader.nat r);
        Alcotest.(check int) "gamma" 1 (Bitbuf.Reader.gamma r);
        Alcotest.(check int) "delta" 1000 (Bitbuf.Reader.delta r)) ]

let dynarray_tests =
  [ Alcotest.test_case "push/pop/last/truncate" `Quick (fun () ->
        let d = Dynarray.create () in
        for i = 0 to 99 do
          Dynarray.push d i
        done;
        Alcotest.(check int) "len" 100 (Dynarray.length d);
        Alcotest.(check int) "last" 99 (Dynarray.last d);
        Alcotest.(check int) "pop" 99 (Dynarray.pop d);
        Dynarray.truncate d 10;
        Alcotest.(check (list int)) "list" (List.init 10 Fun.id) (Dynarray.to_list d));
    qtest
      (QCheck.Test.make ~name:"to_array/of_array roundtrip" ~count:200
         QCheck.(small_list int)
         (fun l ->
           let d = Dynarray.of_array (Array.of_list l) in
           Dynarray.to_list d = l)) ]

let heap_tests =
  [ qtest
      (QCheck.Test.make ~name:"drain sorts" ~count:200
         QCheck.(small_list int)
         (fun l ->
           let h = Heap.of_array ~cmp:compare (Array.of_list l) in
           Heap.drain h = List.sort compare l));
    Alcotest.test_case "peek/pop interplay" `Quick (fun () ->
        let h = Heap.create ~cmp:compare in
        Alcotest.(check (option int)) "empty" None (Heap.pop h);
        Heap.push h 5;
        Heap.push h 2;
        Heap.push h 9;
        Alcotest.(check (option int)) "peek" (Some 2) (Heap.peek h);
        Alcotest.(check (option int)) "pop" (Some 2) (Heap.pop h);
        Alcotest.(check int) "len" 2 (Heap.length h)) ]

let perm_tests =
  [ Alcotest.test_case "iter_all visits n! distinct" `Quick (fun () ->
        for n = 0 to 6 do
          let seen = Hashtbl.create 720 in
          Perm.iter_all n (fun p ->
              check "is perm" true (Perm.is_permutation p);
              Hashtbl.replace seen (Array.to_list p) ());
          Alcotest.(check int)
            (Printf.sprintf "n=%d" n)
            (if n = 0 then 1 else Perm.factorial n)
            (Hashtbl.length seen)
        done);
    qtest
      (QCheck.Test.make ~name:"inverse . apply = id" ~count:200
         QCheck.(pair small_int (int_range 1 30))
         (fun (seed, n) ->
           let p = Perm.random (Prng.create seed) n in
           let inv = Perm.inverse p in
           Array.for_all (fun i -> inv.(p.(i)) = i) (Array.init n Fun.id))) ]

let suites =
  [ ("support.prng", prng_tests);
    ("support.bitset", bitset_tests);
    ("support.bitbuf", bitbuf_tests);
    ("support.dynarray", dynarray_tests);
    ("support.heap", heap_tests);
    ("support.perm", perm_tests) ]
