test/main.mli:
