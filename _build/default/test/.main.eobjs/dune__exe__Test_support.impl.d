test/test_support.ml: Alcotest Array Bitbuf Bitset Dynarray Fun Hashtbl Heap Int List Perm Printf Prng QCheck QCheck_alcotest Set Wb_support
