test/test_graph.ml: Alcotest Algo Array Gen Graph Graph6 List Printf Prufer QCheck QCheck_alcotest Wb_graph Wb_support
