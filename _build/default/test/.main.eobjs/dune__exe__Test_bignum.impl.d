test/test_bignum.ml: Alcotest Nat QCheck QCheck_alcotest String Wb_bignum Zint
