test/test_model.ml: Adversary Alcotest Answer Array Board Engine List Message Model Printf Problems Protocol String View Wb_graph Wb_model Wb_support
