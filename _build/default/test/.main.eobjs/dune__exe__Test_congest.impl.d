test/test_congest.ml: Alcotest Array Fun List QCheck QCheck_alcotest Wb_congest Wb_graph Wb_model Wb_protocols Wb_support
