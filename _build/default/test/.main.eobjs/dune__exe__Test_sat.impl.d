test/test_sat.ml: Alcotest Array Dimacs List Printf QCheck QCheck_alcotest Solver Wb_sat Wb_support
