test/test_synth.ml: Alcotest Array Hashtbl List Simasync_synth Simsync_synth Views Wb_graph Wb_synth
