test/test_protocols.ml: Adversary Alcotest Answer Array Engine List Printf Problems QCheck QCheck_alcotest Wb_graph Wb_model Wb_protocols Wb_support
