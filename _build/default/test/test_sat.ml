open Wb_sat
module Prng = Wb_support.Prng

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let brute_force nvars clauses =
  let rec go assignment v =
    if v > nvars then
      List.for_all
        (fun c -> List.exists (fun l -> if l > 0 then assignment.(l) else not assignment.(-l)) c)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make (nvars + 1) false) 1

let random_instance seed =
  let rng = Prng.create seed in
  let nvars = 4 + Prng.int rng 11 in
  let nclauses = 3 + Prng.int rng (4 * nvars) in
  let clauses =
    List.init nclauses (fun _ ->
        let width = 1 + Prng.int rng 3 in
        List.init width (fun _ ->
            let v = 1 + Prng.int rng nvars in
            if Prng.bool rng then v else -v))
  in
  (nvars, clauses)

let model_satisfies m clauses =
  List.for_all (fun c -> List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)) c) clauses

let solve_clauses nvars clauses =
  let s = Solver.create nvars in
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

let solver_tests =
  [ qtest
      (QCheck.Test.make ~name:"agrees with brute force; models verify" ~count:400 QCheck.small_int
         (fun seed ->
           let nvars, clauses = random_instance seed in
           let s, outcome = solve_clauses nvars clauses in
           let want = brute_force nvars clauses in
           (outcome = Solver.Sat) = want
           && (outcome = Solver.Unsat || model_satisfies (Solver.model s) clauses)));
    Alcotest.test_case "pigeonhole principle is refuted" `Quick (fun () ->
        List.iter
          (fun n ->
            let v p h = (p * n) + h + 1 in
            let s = Solver.create ((n + 1) * n) in
            for p = 0 to n do
              Solver.add_clause s (List.init n (fun h -> v p h))
            done;
            for h = 0 to n - 1 do
              for p1 = 0 to n do
                for p2 = p1 + 1 to n do
                  Solver.add_clause s [ -v p1 h; -v p2 h ]
                done
              done
            done;
            check (Printf.sprintf "php %d" n) true (Solver.solve s = Solver.Unsat))
          [ 2; 3; 4; 5 ]);
    Alcotest.test_case "empty clause makes it unsat" `Quick (fun () ->
        let s = Solver.create 2 in
        Solver.add_clause s [];
        check "unsat" true (Solver.solve s = Solver.Unsat));
    Alcotest.test_case "no clauses: trivially sat" `Quick (fun () ->
        let s = Solver.create 3 in
        check "sat" true (Solver.solve s = Solver.Sat));
    Alcotest.test_case "tautologies are ignored" `Quick (fun () ->
        let s = Solver.create 1 in
        Solver.add_clause s [ 1; -1 ];
        Alcotest.(check int) "no clause stored" 0 (Solver.num_clauses s);
        check "sat" true (Solver.solve s = Solver.Sat));
    Alcotest.test_case "unit chain propagates" `Quick (fun () ->
        let s = Solver.create 5 in
        Solver.add_clause s [ 1 ];
        Solver.add_clause s [ -1; 2 ];
        Solver.add_clause s [ -2; 3 ];
        Solver.add_clause s [ -3; 4 ];
        Solver.add_clause s [ -4; 5 ];
        check "sat" true (Solver.solve s = Solver.Sat);
        List.iter (fun v -> check (Printf.sprintf "v%d" v) true (Solver.value s v)) [ 1; 2; 3; 4; 5 ]);
    Alcotest.test_case "contradicting units" `Quick (fun () ->
        let s = Solver.create 1 in
        Solver.add_clause s [ 1 ];
        Solver.add_clause s [ -1 ];
        check "unsat" true (Solver.solve s = Solver.Unsat));
    Alcotest.test_case "duplicate literals are merged" `Quick (fun () ->
        let s = Solver.create 2 in
        Solver.add_clause s [ 1; 1; 2; 2 ];
        Solver.add_clause s [ -1 ];
        Solver.add_clause s [ -2; -1 ];
        check "sat with x2" true (Solver.solve s = Solver.Sat && Solver.value s 2));
    Alcotest.test_case "out-of-range literal rejected" `Quick (fun () ->
        let s = Solver.create 2 in
        Alcotest.check_raises "range" (Invalid_argument "Solver.add_clause: literal out of range")
          (fun () -> Solver.add_clause s [ 3 ]));
    Alcotest.test_case "incremental use between solves" `Quick (fun () ->
        let s = Solver.create 3 in
        Solver.add_clause s [ 1; 2 ];
        check "sat 1" true (Solver.solve s = Solver.Sat);
        Solver.add_clause s [ -1 ];
        Solver.add_clause s [ -2 ];
        check "unsat after strengthening" true (Solver.solve s = Solver.Unsat));
    Alcotest.test_case "stats move" `Quick (fun () ->
        let s = Solver.create 20 in
        let rng = Prng.create 5 in
        for _ = 1 to 80 do
          Solver.add_clause s
            (List.init 3 (fun _ ->
                 let v = 1 + Prng.int rng 20 in
                 if Prng.bool rng then v else -v))
        done;
        ignore (Solver.solve s);
        check "propagated" true (Solver.stats_propagations s > 0)) ]

let dimacs_tests =
  [ Alcotest.test_case "roundtrip" `Quick (fun () ->
        let cnf = { Dimacs.nvars = 3; clauses = [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3 ] ] } in
        let cnf' = Dimacs.of_string (Dimacs.to_string cnf) in
        check "equal" true (cnf = cnf'));
    Alcotest.test_case "comments and blank lines are skipped" `Quick (fun () ->
        let text = "c hello\n\np cnf 2 1\n1 -2 0\n" in
        let cnf = Dimacs.of_string text in
        Alcotest.(check int) "nvars" 2 cnf.Dimacs.nvars;
        check "clause" true (cnf.Dimacs.clauses = [ [ 1; -2 ] ]));
    Alcotest.test_case "solver_of_cnf" `Quick (fun () ->
        let s = Dimacs.solver_of_cnf { Dimacs.nvars = 2; clauses = [ [ 1 ]; [ -1; 2 ] ] } in
        check "sat" true (Solver.solve s = Solver.Sat);
        check "x2" true (Solver.value s 2)) ]

let suites = [ ("sat.solver", solver_tests); ("sat.dimacs", dimacs_tests) ]
