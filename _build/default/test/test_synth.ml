module G = Wb_graph
open Wb_synth

let check = Alcotest.(check bool)

(* Independent check of a synthesised SIMASYNC message function: all
   conflicting graphs actually get different whiteboard vectors. *)
let verify_message_function spec msg =
  let universe = Array.of_list spec.Simasync_synth.universe in
  let signatures = Array.map (fun g -> Array.map msg (Views.vector g)) universe in
  let ok = ref true in
  Array.iteri
    (fun i gi ->
      Array.iteri
        (fun j gj ->
          if j > i && spec.Simasync_synth.conflict gi gj && signatures.(i) = signatures.(j) then
            ok := false)
        universe)
    universe;
  !ok

let views_tests =
  [ Alcotest.test_case "count and index are a bijection" `Quick (fun () ->
        List.iter
          (fun n ->
            let all = Views.all ~n in
            Alcotest.(check int) "count" (Views.count ~n) (List.length all);
            let seen = Hashtbl.create 64 in
            List.iter
              (fun v ->
                let i = Views.index ~n v in
                check "range" true (i >= 0 && i < Views.count ~n);
                check "fresh" true (not (Hashtbl.mem seen i));
                Hashtbl.replace seen i ())
              all)
          [ 1; 2; 3; 4; 5 ]);
    Alcotest.test_case "of_graph matches neighborhoods" `Quick (fun () ->
        let g = G.Gen.cycle 4 in
        let v = Views.of_graph g 0 in
        Alcotest.(check int) "mask" (0b1010) v.Views.mask);
    Alcotest.test_case "vectors are injective over graphs" `Quick (fun () ->
        let gs = Array.of_list (G.Gen.all_labelled_graphs 4) in
        let vecs = Array.map Views.vector gs in
        let distinct = ref true in
        Array.iteri
          (fun i _ -> Array.iteri (fun j _ -> if i < j && vecs.(i) = vecs.(j) then distinct := false) gs)
          gs;
        check "injective" true !distinct) ]

let simasync_tests =
  [ Alcotest.test_case "TRIANGLE at n=3 needs exactly 2 letters" `Quick (fun () ->
        let spec =
          Simasync_synth.bool_spec ~name:"triangle" ~universe:(G.Gen.all_labelled_graphs 3)
            G.Algo.has_triangle
        in
        Alcotest.(check (option int)) "min" (Some 2) (Simasync_synth.min_alphabet ~n:3 spec ~max:4));
    Alcotest.test_case "TRIANGLE at n=4 needs exactly 3 letters" `Quick (fun () ->
        let spec =
          Simasync_synth.bool_spec ~name:"triangle" ~universe:(G.Gen.all_labelled_graphs 4)
            G.Algo.has_triangle
        in
        check "2 impossible" false (Simasync_synth.exists_protocol ~n:4 spec ~alphabet:2);
        check "3 possible" true (Simasync_synth.exists_protocol ~n:4 spec ~alphabet:3));
    Alcotest.test_case "witness functions verify independently" `Quick (fun () ->
        let spec =
          Simasync_synth.bool_spec ~name:"connectivity" ~universe:(G.Gen.all_labelled_graphs 4)
            G.Algo.is_connected
        in
        (match Simasync_synth.min_alphabet ~n:4 spec ~max:6 with
        | None -> Alcotest.fail "expected a protocol"
        | Some b ->
          (match Simasync_synth.message_function ~n:4 spec ~alphabet:b with
          | None -> Alcotest.fail "witness missing at the minimum"
          | Some msg -> check "verified" true (verify_message_function spec msg))));
    Alcotest.test_case "a trivially constant problem needs 1 letter" `Quick (fun () ->
        let spec =
          Simasync_synth.bool_spec ~name:"always-false" ~universe:(G.Gen.all_labelled_graphs 3)
            (fun _ -> false)
        in
        Alcotest.(check (option int)) "min" (Some 1) (Simasync_synth.min_alphabet ~n:3 spec ~max:2));
    Alcotest.test_case "huge alphabet always suffices (views are injective)" `Quick (fun () ->
        let spec =
          Simasync_synth.bool_spec ~name:"parity-of-edges" ~universe:(G.Gen.all_labelled_graphs 3)
            (fun g -> G.Graph.num_edges g mod 2 = 0)
        in
        check "alphabet 2^(n-1)" true (Simasync_synth.exists_protocol ~n:3 spec ~alphabet:4)) ]

let simsync_tests =
  [ Alcotest.test_case "problem_size grows as documented" `Quick (fun () ->
        Alcotest.(check int) "n=2,B=1" (1 + 2 + 2) (Simsync_synth.problem_size ~n:2 ~alphabet:1);
        Alcotest.(check int) "n=2,B=2" (1 + 4 + 8) (Simsync_synth.problem_size ~n:2 ~alphabet:2));
    Alcotest.test_case "TRIANGLE at n=3: SIMSYNC also needs exactly 2" `Quick (fun () ->
        let spec =
          Simasync_synth.bool_spec ~name:"triangle" ~universe:(G.Gen.all_labelled_graphs 3)
            G.Algo.has_triangle
        in
        Alcotest.(check (option int)) "min" (Some 2) (Simsync_synth.min_alphabet ~n:3 spec ~max:3));
    Alcotest.test_case "SIMSYNC is never weaker than SIMASYNC (n=3 problems)" `Quick (fun () ->
        let universe = G.Gen.all_labelled_graphs 3 in
        List.iter
          (fun (name, answer) ->
            let spec = Simasync_synth.bool_spec ~name ~universe answer in
            let a = Simasync_synth.min_alphabet ~n:3 spec ~max:4 in
            let s = Simsync_synth.min_alphabet ~n:3 spec ~max:4 in
            match (a, s) with
            | Some a, Some s -> check (name ^ " ordered") true (s <= a)
            | _ -> Alcotest.fail "both should exist at n=3")
          [ ("triangle", G.Algo.has_triangle);
            ("connectivity", G.Algo.is_connected);
            ("has-edge", fun g -> G.Graph.num_edges g > 0) ]) ]

let suites =
  [ ("synth.views", views_tests);
    ("synth.simasync", simasync_tests);
    ("synth.simsync", simsync_tests) ]
