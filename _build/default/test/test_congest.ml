module G = Wb_graph
module Prng = Wb_support.Prng

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let bfs_tests =
  [ qtest
      (QCheck.Test.make ~name:"flood BFS matches reference distances" ~count:60
         QCheck.(pair small_int (int_range 1 40))
         (fun (seed, n) ->
           let g = G.Gen.random_connected (Prng.create seed) n 0.1 in
           let r = Wb_congest.Bfs_flood.run g in
           r.Wb_congest.Bfs_flood.dist = G.Algo.bfs_dist g 0));
    qtest
      (QCheck.Test.make ~name:"parents form a valid BFS tree" ~count:60 QCheck.small_int
         (fun seed ->
           let g = G.Gen.random_connected (Prng.create seed) 25 0.12 in
           let r = Wb_congest.Bfs_flood.run g in
           let dist = G.Algo.bfs_dist g 0 in
           Array.for_all Fun.id
             (Array.mapi
                (fun v p ->
                  if v = 0 then p = -1
                  else G.Graph.mem_edge g v p && dist.(p) = dist.(v) - 1)
                r.Wb_congest.Bfs_flood.parent)));
    Alcotest.test_case "message accounting: one burst per node" `Quick (fun () ->
        let g = G.Gen.cycle 10 in
        let r = Wb_congest.Bfs_flood.run g in
        (* every node announces once along each incident edge: 2m messages *)
        Alcotest.(check int) "messages" (2 * G.Graph.num_edges g) r.Wb_congest.Bfs_flood.stats.Wb_congest.Congest.messages);
    Alcotest.test_case "rounds scale with diameter, not n" `Quick (fun () ->
        let star = G.Gen.star 60 in
        let path = G.Gen.path 60 in
        let rs = (Wb_congest.Bfs_flood.run star).Wb_congest.Bfs_flood.stats.Wb_congest.Congest.rounds in
        let rp = (Wb_congest.Bfs_flood.run path).Wb_congest.Bfs_flood.stats.Wb_congest.Congest.rounds in
        (* both pay the quiescence countdown, but the path needs ~n more
           propagation rounds first *)
        check "path slower" true (rp > rs + 30));
    Alcotest.test_case "whiteboard BFS beats CONGEST on total bits (dense graph)" `Quick
      (fun () ->
        let g = G.Gen.random_connected (Prng.create 11) 64 0.3 in
        let congest_bits = (Wb_congest.Bfs_flood.run g).Wb_congest.Bfs_flood.stats.Wb_congest.Congest.total_bits in
        let run =
          Wb_model.Engine.run_packed Wb_protocols.Bfs_sync.protocol g Wb_model.Adversary.min_id
        in
        check "success" true (Wb_model.Engine.succeeded run);
        check "whiteboard cheaper" true (run.Wb_model.Engine.stats.total_bits < congest_bits)) ]

let luby_tests =
  [ qtest
      (QCheck.Test.make ~name:"luby outputs a maximal independent set" ~count:80
         QCheck.(pair small_int (int_range 1 40))
         (fun (seed, n) ->
           let g = G.Gen.random_gnp (Prng.create seed) n 0.2 in
           let r = Wb_congest.Luby_mis.run ~seed:(seed + 1) g in
           let members =
             List.filter (fun v -> r.Wb_congest.Luby_mis.in_mis.(v)) (List.init n Fun.id)
           in
           G.Algo.is_maximal_independent_set g members));
    Alcotest.test_case "luby on a clique picks exactly one node" `Quick (fun () ->
        let g = G.Gen.complete 9 in
        let r = Wb_congest.Luby_mis.run ~seed:5 g in
        Alcotest.(check int) "one" 1
          (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.Wb_congest.Luby_mis.in_mis));
    Alcotest.test_case "luby rounds stay logarithmic-ish" `Quick (fun () ->
        let g = G.Gen.random_gnp (Prng.create 3) 120 0.1 in
        let r = Wb_congest.Luby_mis.run ~seed:4 g in
        check "rounds" true (r.Wb_congest.Luby_mis.stats.Wb_congest.Congest.rounds < 100)) ]

let sim_tests =
  [ Alcotest.test_case "sending along a non-edge is rejected" `Quick (fun () ->
        let module Bad = struct
          type state = bool

          type message = unit

          let size_bits () = 1

          let init ~n:_ ~id:_ ~neighbors:_ = false

          let step ~round:_ ~id:_ _ ~inbox:_ = (true, [ (0, ()) ])

          let halted s = s
        end in
        let module R = Wb_congest.Congest.Run (Bad) in
        Alcotest.check_raises "non-edge" (Invalid_argument "Congest: sending along a non-edge")
          (fun () -> ignore (R.execute (G.Graph.empty 2))));
    Alcotest.test_case "non-halting algorithms hit the round limit" `Quick (fun () ->
        let module Spin = struct
          type state = unit

          type message = unit

          let size_bits () = 1

          let init ~n:_ ~id:_ ~neighbors:_ = ()

          let step ~round:_ ~id:_ () ~inbox:_ = ((), [])

          let halted () = false
        end in
        let module R = Wb_congest.Congest.Run (Spin) in
        Alcotest.check_raises "limit" (Failure "Congest: round limit exceeded") (fun () ->
            ignore (R.execute ~max_rounds:5 (G.Gen.path 3)))) ]

let suites =
  [ ("congest.bfs", bfs_tests); ("congest.luby", luby_tests); ("congest.sim", sim_tests) ]
