open Wb_bignum

let qtest = QCheck_alcotest.to_alcotest

let nat = Alcotest.testable (fun ppf v -> Nat.pp ppf v) Nat.equal

let small_nat_gen = QCheck.map (fun v -> abs v) QCheck.int

let nat_pair = QCheck.pair small_nat_gen small_nat_gen

let nat_tests =
  [ qtest
      (QCheck.Test.make ~name:"of_int/to_int roundtrip" ~count:500 small_nat_gen (fun v ->
           Nat.to_int_opt (Nat.of_int v) = Some v));
    qtest
      (QCheck.Test.make ~name:"add agrees with int" ~count:500
         QCheck.(pair (int_bound (1 lsl 40)) (int_bound (1 lsl 40)))
         (fun (a, b) -> Nat.to_int_opt (Nat.add (Nat.of_int a) (Nat.of_int b)) = Some (a + b)));
    qtest
      (QCheck.Test.make ~name:"mul agrees with int" ~count:500
         QCheck.(pair (int_bound (1 lsl 30)) (int_bound (1 lsl 30)))
         (fun (a, b) -> Nat.to_int_opt (Nat.mul (Nat.of_int a) (Nat.of_int b)) = Some (a * b)));
    qtest
      (QCheck.Test.make ~name:"sub inverts add" ~count:500 nat_pair (fun (a, b) ->
           let na = Nat.of_int a and nb = Nat.of_int b in
           Nat.equal (Nat.sub (Nat.add na nb) nb) na));
    qtest
      (QCheck.Test.make ~name:"divmod identity" ~count:500
         QCheck.(pair small_nat_gen (int_range 1 1_000_000))
         (fun (a, b) ->
           let q, r = Nat.divmod (Nat.of_int a) (Nat.of_int b) in
           Nat.compare r (Nat.of_int b) < 0
           && Nat.equal (Nat.add (Nat.mul q (Nat.of_int b)) r) (Nat.of_int a)));
    qtest
      (QCheck.Test.make ~name:"string roundtrip" ~count:300 small_nat_gen (fun v ->
           Nat.equal (Nat.of_string (Nat.to_string (Nat.of_int v))) (Nat.of_int v)));
    qtest
      (QCheck.Test.make ~name:"compare is total order consistent with int" ~count:500 nat_pair
         (fun (a, b) -> compare a b = Nat.compare (Nat.of_int a) (Nat.of_int b)));
    Alcotest.test_case "big multiplication cross-factorisations" `Quick (fun () ->
        (* 2^100 * 3^50 = 6^50 * 2^50: same value through different routes. *)
        Alcotest.check nat "2^100*3^50"
          (Nat.mul (Nat.pow_int 6 50) (Nat.pow_int 2 50))
          (Nat.mul (Nat.pow_int 2 100) (Nat.pow_int 3 50));
        Alcotest.(check string) "10^30" ("1" ^ String.make 30 '0') (Nat.to_string (Nat.pow_int 10 30)));
    Alcotest.test_case "pow chain" `Quick (fun () ->
        Alcotest.check nat "2^10" (Nat.of_int 1024) (Nat.pow_int 2 10);
        Alcotest.check nat "7^0" Nat.one (Nat.pow_int 7 0);
        Alcotest.check nat "(2^30)^2" (Nat.mul (Nat.pow_int 2 30) (Nat.pow_int 2 30)) (Nat.pow (Nat.pow_int 2 30) 2));
    Alcotest.test_case "bit_length and nth_bit" `Quick (fun () ->
        Alcotest.(check int) "bl 0" 0 (Nat.bit_length Nat.zero);
        Alcotest.(check int) "bl 1" 1 (Nat.bit_length Nat.one);
        Alcotest.(check int) "bl 2^64" 65 (Nat.bit_length (Nat.pow_int 2 64));
        Alcotest.(check bool) "bit 64 of 2^64" true (Nat.nth_bit (Nat.pow_int 2 64) 64);
        Alcotest.(check bool) "bit 10 of 2^64" false (Nat.nth_bit (Nat.pow_int 2 64) 10));
    Alcotest.test_case "shift_left = mul by power of two" `Quick (fun () ->
        let v = Nat.of_string "123456789123456789123456789" in
        Alcotest.check nat "shift 67" (Nat.mul v (Nat.pow_int 2 67)) (Nat.shift_left v 67));
    Alcotest.test_case "sub underflow raises" `Quick (fun () ->
        Alcotest.check_raises "sub" (Invalid_argument "Nat.sub: negative result") (fun () ->
            ignore (Nat.sub (Nat.of_int 3) (Nat.of_int 4))));
    Alcotest.test_case "division by zero raises" `Quick (fun () ->
        Alcotest.check_raises "div" Division_by_zero (fun () ->
            ignore (Nat.divmod Nat.one Nat.zero)));
    Alcotest.test_case "divmod with huge operands" `Quick (fun () ->
        let a = Nat.pow_int 10 60 in
        let b = Nat.pow_int 10 25 in
        let q, r = Nat.divmod a b in
        Alcotest.check nat "q" (Nat.pow_int 10 35) q;
        Alcotest.check nat "r" Nat.zero r);
    Alcotest.test_case "log2_floor" `Quick (fun () ->
        Alcotest.(check int) "log2 1" 0 (Nat.log2_floor Nat.one);
        Alcotest.(check int) "log2 2^80" 80 (Nat.log2_floor (Nat.pow_int 2 80));
        Alcotest.(check int) "log2 (2^80 - 1)" 79 (Nat.log2_floor (Nat.sub (Nat.pow_int 2 80) Nat.one))) ]

let zint_tests =
  [ qtest
      (QCheck.Test.make ~name:"ring ops agree with int" ~count:1000
         QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
         (fun (a, b) ->
           let za = Zint.of_int a and zb = Zint.of_int b in
           Zint.to_int_opt (Zint.add za zb) = Some (a + b)
           && Zint.to_int_opt (Zint.sub za zb) = Some (a - b)
           && Zint.to_int_opt (Zint.mul za zb) = Some (a * b)
           && Zint.sign za = compare a 0
           && compare a b = Zint.compare za zb));
    Alcotest.test_case "negation and printing" `Quick (fun () ->
        Alcotest.(check string) "pos" "42" (Zint.to_string (Zint.of_int 42));
        Alcotest.(check string) "neg" "-42" (Zint.to_string (Zint.of_int (-42)));
        Alcotest.(check string) "zero" "0" (Zint.to_string (Zint.neg Zint.zero)));
    Alcotest.test_case "to_nat_opt" `Quick (fun () ->
        Alcotest.(check bool) "neg none" true (Zint.to_nat_opt (Zint.of_int (-1)) = None);
        Alcotest.(check bool) "pos some" true
          (match Zint.to_nat_opt (Zint.of_int 7) with
          | Some n -> Wb_bignum.Nat.equal n (Wb_bignum.Nat.of_int 7)
          | None -> false)) ]

let suites = [ ("bignum.nat", nat_tests); ("bignum.zint", zint_tests) ]
